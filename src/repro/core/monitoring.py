"""Operational monitoring of a running pipeline.

Long-running deployments need visibility: how fast are entities flowing,
how much work does each one cause, how big has the state grown, is
pruning keeping up.  :class:`PipelineMonitor` wraps any sequential
pipeline and emits a :class:`Snapshot` every ``interval`` entities (and on
demand), keeping a bounded history so rates can be computed over the most
recent window rather than the whole run.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.pipeline import StreamERPipeline
from repro.errors import ConfigurationError
from repro.types import EntityDescription, Match


@dataclass(frozen=True)
class Snapshot:
    """One point-in-time view of pipeline health."""

    entities_processed: int
    elapsed_seconds: float
    throughput_recent: float
    comparisons_generated: int
    comparisons_executed: int
    comparisons_per_entity_recent: float
    matches_found: int
    blocks: int
    blacklisted_keys: int
    profiles_stored: int
    items_failed: int = 0
    retries_performed: int = 0

    def summary(self) -> str:
        text = (
            f"{self.entities_processed} entities "
            f"({self.throughput_recent:,.0f}/s recent), "
            f"{self.comparisons_per_entity_recent:.1f} comparisons/entity, "
            f"{self.matches_found} matches, "
            f"{self.blocks} blocks (+{self.blacklisted_keys} blacklisted), "
            f"{self.profiles_stored} profiles"
        )
        if self.items_failed or self.retries_performed:
            text += (
                f", {self.items_failed} dead-lettered "
                f"(+{self.retries_performed} retries)"
            )
        return text


class PipelineMonitor:
    """Wraps a :class:`StreamERPipeline` with periodic health snapshots.

    Parameters
    ----------
    pipeline:
        The pipeline to observe; the monitor proxies ``process``.
    interval:
        Emit a snapshot every this many entities.
    on_snapshot:
        Optional callback invoked with each emitted snapshot.
    window:
        Number of recent snapshots retained in ``history`` and used for
        the "recent" rates.
    """

    def __init__(
        self,
        pipeline: StreamERPipeline,
        interval: int = 1000,
        on_snapshot: Callable[[Snapshot], None] | None = None,
        window: int = 60,
    ) -> None:
        if interval < 1:
            raise ConfigurationError("interval must be >= 1")
        if window < 2:
            raise ConfigurationError("window must be >= 2")
        self.pipeline = pipeline
        self.interval = interval
        self.on_snapshot = on_snapshot
        self.history: deque[Snapshot] = deque(maxlen=window)
        self._start = time.perf_counter()
        self._since_last = 0

    def _recent_rates(self, now_entities: int, now_seconds: float,
                      now_comparisons: int) -> tuple[float, float]:
        if not self.history:
            throughput = now_entities / now_seconds if now_seconds > 0 else 0.0
            per_entity = now_comparisons / max(now_entities, 1)
            return throughput, per_entity
        base = self.history[-1]
        d_entities = now_entities - base.entities_processed
        d_seconds = now_seconds - base.elapsed_seconds
        d_comparisons = now_comparisons - base.comparisons_executed
        throughput = d_entities / d_seconds if d_seconds > 0 else 0.0
        per_entity = d_comparisons / max(d_entities, 1)
        return throughput, per_entity

    def snapshot(self) -> Snapshot:
        """Take (and record) a snapshot right now."""
        p = self.pipeline
        elapsed = time.perf_counter() - self._start
        throughput, per_entity = self._recent_rates(
            p.entities_processed, elapsed, p.co.compared
        )
        snap = Snapshot(
            entities_processed=p.entities_processed,
            elapsed_seconds=elapsed,
            throughput_recent=throughput,
            comparisons_generated=p.cg.generated,
            comparisons_executed=p.co.compared,
            comparisons_per_entity_recent=per_entity,
            matches_found=len(p.cl.matches),
            blocks=len(p.bb.blocks),
            blacklisted_keys=len(p.bb.blacklist),
            profiles_stored=len(p.lm.profiles),
            # Supervised executors expose these; plain pipelines default to 0.
            items_failed=getattr(p, "items_failed", 0),
            retries_performed=getattr(p, "retries_performed", 0),
        )
        self.history.append(snap)
        if self.on_snapshot is not None:
            self.on_snapshot(snap)
        return snap

    def process(self, entity: EntityDescription) -> list[Match]:
        """Proxy one entity through the pipeline, snapshotting on schedule."""
        matches = self.pipeline.process(entity)
        self._since_last += 1
        if self._since_last >= self.interval:
            self._since_last = 0
            self.snapshot()
        return matches

    def process_many(self, entities: Iterable[EntityDescription]) -> list[Match]:
        out: list[Match] = []
        for entity in entities:
            out.extend(self.process(entity))
        return out
