"""The paper's functional model for ER on dynamic data (§III), verbatim.

This module is the *reference semantics*: every step is a pure function
taking and returning tuples that carry the full state σ = ⟨M, B⟩, and an
incremental ER computation is the fold of ``f_er`` over the input.  It is
deliberately written for clarity, not speed — the optimized stage classes
in :mod:`repro.core.stages` must produce the same matches, which the test
suite checks property-style on random inputs.

State components are immutable snapshots (copy-on-write), matching the pure
functional style of §III-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import reduce
from typing import Iterable, Mapping

from repro.classification.classifiers import Classifier, ThresholdClassifier
from repro.comparison.comparator import TokenSetComparator
from repro.reading.profiles import ProfileBuilder
from repro.types import (
    Comparison,
    EntityDescription,
    EntityId,
    Profile,
    ScoredComparison,
    pair_key,
)


@dataclass(frozen=True)
class FunctionalState:
    """σ = ⟨M, B⟩ plus the blacklist and profile map of the framework."""

    matches: frozenset[tuple[EntityId, EntityId]] = frozenset()
    blocks: Mapping[str, tuple[EntityId, ...]] = field(default_factory=dict)
    blacklist: frozenset[str] = frozenset()
    profiles: Mapping[EntityId, Profile] = field(default_factory=dict)


@dataclass(frozen=True)
class ModelConfig:
    """Parameters shared by all functions of the model."""

    alpha: int = 1000
    beta: float = 0.05
    enable_block_cleaning: bool = True
    enable_comparison_cleaning: bool = True
    clean_clean: bool = False
    profile_builder: ProfileBuilder = field(default_factory=ProfileBuilder)
    comparator: TokenSetComparator = field(default_factory=TokenSetComparator)
    classifier: Classifier = field(default_factory=ThresholdClassifier)


def f_dr(
    entity: EntityDescription, state: FunctionalState, config: ModelConfig
) -> tuple[Profile, frozenset[str], FunctionalState]:
    """Data reading: ⟨e_i, σ⟩ → ⟨i, p_i, K_i, σ⟩ (σ unchanged)."""
    profile = config.profile_builder.build(entity)
    return profile, profile.tokens, state


def f_bb_bp(
    profile: Profile,
    keys: frozenset[str],
    state: FunctionalState,
    config: ModelConfig,
) -> tuple[Profile, frozenset[str], dict[str, tuple[EntityId, ...]], FunctionalState]:
    """Block building + block pruning (Algorithm 1), purely.

    Returns the per-entity snapshot ``B_ei`` (non-singleton blocks including
    the entity itself) alongside the updated global state.
    """
    blocks = dict(state.blocks)
    blacklist = set(state.blacklist)
    snapshot: dict[str, tuple[EntityId, ...]] = {}
    for key in sorted(keys):
        if config.enable_block_cleaning and key in blacklist:
            continue
        block = blocks.get(key, ()) + (profile.eid,)
        if config.enable_block_cleaning and len(block) >= config.alpha:
            blocks.pop(key, None)
            blacklist.add(key)
            continue
        blocks[key] = block
        if len(block) > 1:  # removeSingletons
            snapshot[key] = block
    new_state = replace(state, blocks=blocks, blacklist=frozenset(blacklist))
    return profile, frozenset(snapshot), snapshot, new_state


def f_bg(
    profile: Profile,
    keys: frozenset[str],
    snapshot: dict[str, tuple[EntityId, ...]],
    state: FunctionalState,
    config: ModelConfig,
) -> tuple[Profile, frozenset[str], dict[str, tuple[EntityId, ...]], FunctionalState]:
    """Block ghosting (Algorithm 2): drop keys of overly general blocks."""
    if not config.enable_block_cleaning or not snapshot:
        return profile, keys, snapshot, state
    min_size = min(len(block) for block in snapshot.values())
    threshold = min_size / config.beta
    kept = {k: b for k, b in snapshot.items() if len(b) <= threshold}
    return profile, frozenset(kept), kept, state


def f_cg(
    profile: Profile,
    snapshot: dict[str, tuple[EntityId, ...]],
    state: FunctionalState,
    config: ModelConfig,
) -> tuple[list[EntityId], FunctionalState]:
    """Comparison generation: candidate partner ids with multiplicity."""
    eid = profile.eid
    candidates: list[EntityId] = []
    for block in snapshot.values():
        for j in block:
            if j == eid:
                continue
            if config.clean_clean and j[0] == eid[0]:  # type: ignore[index]
                continue
            candidates.append(j)
    return candidates, state


def f_cc(
    candidates: list[EntityId], state: FunctionalState, config: ModelConfig
) -> tuple[list[EntityId], FunctionalState]:
    """Comparison cleaning (Algorithm 3): CBS counting + average threshold."""
    counts: dict[EntityId, int] = {}
    for j in candidates:
        counts[j] = counts.get(j, 0) + 1
    if not counts:
        return [], state
    if not config.enable_comparison_cleaning:
        return list(counts), state
    avg = sum(counts.values()) / len(counts)
    return [j for j, c in counts.items() if c >= avg], state


def f_lm(
    profile: Profile,
    candidates: list[EntityId],
    state: FunctionalState,
) -> tuple[list[Comparison], FunctionalState]:
    """Load management: register p_i and resolve partner profiles."""
    profiles = dict(state.profiles)
    profiles[profile.eid] = profile
    comparisons = [
        Comparison(left=profile, right=profiles[j]) for j in candidates if j in profiles
    ]
    return comparisons, replace(state, profiles=profiles)


def f_co(
    comparisons: list[Comparison], state: FunctionalState, config: ModelConfig
) -> tuple[list[ScoredComparison], FunctionalState]:
    """Comparison: attach similarity scores."""
    return [config.comparator.compare(c) for c in comparisons], state


def f_cl(
    scored: list[ScoredComparison], state: FunctionalState, config: ModelConfig
) -> FunctionalState:
    """Classification: extend M with the newly found matches."""
    new_pairs = set(state.matches)
    for item in scored:
        match = config.classifier.classify(item)
        if match is not None:
            new_pairs.add(pair_key(match.left, match.right))
    return replace(state, matches=frozenset(new_pairs))


def f_er(
    entity: EntityDescription, state: FunctionalState, config: ModelConfig
) -> FunctionalState:
    """One application of the composed ER function: σ_{i+1} = f_er(e_i, σ_i)."""
    profile, keys, state = f_dr(entity, state, config)
    profile, keys, snapshot, state = f_bb_bp(profile, keys, state, config)
    profile, keys, snapshot, state = f_bg(profile, keys, snapshot, state, config)
    candidates, state = f_cg(profile, snapshot, state, config)
    candidates, state = f_cc(candidates, state, config)
    comparisons, state = f_lm(profile, candidates, state)
    scored, state = f_co(comparisons, state, config)
    return f_cl(scored, state, config)


def fold_er(
    entities: Iterable[EntityDescription],
    config: ModelConfig | None = None,
    initial: FunctionalState | None = None,
) -> FunctionalState:
    """The incremental ER computation: fold of ``f_er`` over the dataset.

    ``initial`` may carry the state of a previously resolved dataset that
    the new data is updating, exactly as §III-A allows.
    """
    config = config or ModelConfig()
    state = initial if initial is not None else FunctionalState()
    return reduce(lambda sigma, entity: f_er(entity, sigma, config), entities, state)


def stream_er(
    entities: Iterable[EntityDescription],
    config: ModelConfig | None = None,
    initial: FunctionalState | None = None,
) -> Iterable[frozenset[tuple[EntityId, EntityId]]]:
    """The streaming ER higher-order function of §III-C.

    Lazily yields the match set ``M_i`` after each entity — the output
    stream ``[M_1, M_2, ...]``.
    """
    config = config or ModelConfig()
    state = initial if initial is not None else FunctionalState()
    for entity in entities:
        state = f_er(entity, state, config)
        yield state.matches
