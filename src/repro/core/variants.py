"""Design-choice ablation variants of the stream pipeline.

§IV-A motivates two framework design choices:

* **profile maintenance** — blocks store identifiers only; full profiles
  live in the profile map and are re-attached by ``f_lm``;
* **avoiding shared state** — covered by the stage ownership layout.

:class:`InlineProfilePipeline` implements the *rejected* alternative for
the first choice: blocks store the full profiles, comparison generation
emits profile pairs directly, and there is no load-management stage.  The
ablation benchmark contrasts the two on runtime and state size.
"""

from __future__ import annotations

import sys
import time
from typing import Iterable

from repro.core.config import StreamERConfig
from repro.core.pipeline import ERResult
from repro.core.stages import (
    ClassificationStage,
    ComparisonStage,
    DataReadingStage,
    MaterializedComparisons,
    ScoredComparisons,
)
from repro.metablocking.iwnp import iwnp
from repro.types import Comparison, EntityDescription, Match, Profile


class InlineProfilePipeline:
    """The no-profile-map variant: blocks carry full profiles.

    Functionally equivalent to :class:`~repro.core.pipeline.StreamERPipeline`
    (same matches on the same input); the difference is purely in state
    representation and stage structure, which is what the ablation
    measures.
    """

    def __init__(self, config: StreamERConfig | None = None) -> None:
        self.config = config or StreamERConfig()
        cfg = self.config
        self.dr = DataReadingStage(cfg.profile_builder)
        self.co = ComparisonStage(cfg.comparator)
        self.cl = ClassificationStage(cfg.classifier)
        self._blocks: dict[str, list[Profile]] = {}
        self._blacklist: set[str] = set()
        self.pruned_blocks = 0
        self.comparisons_generated = 0
        self.comparisons_after_cleaning = 0
        self.elapsed_seconds = 0.0
        self._entities = 0

    def _block_step(self, profile: Profile) -> dict[str, list[Profile]]:
        """Algorithm 1 over profile-carrying blocks."""
        cfg = self.config
        snapshot: dict[str, list[Profile]] = {}
        for key in profile.tokens:
            if cfg.enable_block_cleaning and key in self._blacklist:
                continue
            block = self._blocks.setdefault(key, [])
            block.append(profile)
            if cfg.enable_block_cleaning and len(block) >= cfg.alpha:
                del self._blocks[key]
                self._blacklist.add(key)
                self.pruned_blocks += 1
                snapshot.pop(key, None)
                continue
            if len(block) > 1:
                snapshot[key] = block
        return snapshot

    def _ghost_step(
        self, snapshot: dict[str, list[Profile]]
    ) -> dict[str, list[Profile]]:
        if not self.config.enable_block_cleaning or not snapshot:
            return snapshot
        min_size = min(len(b) for b in snapshot.values())
        threshold = min_size / self.config.beta
        return {k: b for k, b in snapshot.items() if len(b) <= threshold}

    def process(self, entity: EntityDescription) -> list[Match]:
        start = time.perf_counter()
        self._entities += 1
        profile = self.dr(entity)
        snapshot = self._ghost_step(self._block_step(profile))
        candidates: list[Profile] = []
        my_source = profile.eid[0] if self.config.clean_clean else None  # type: ignore[index]
        for block in snapshot.values():
            for other in block:
                if other.eid == profile.eid:
                    continue
                if self.config.clean_clean and other.eid[0] == my_source:  # type: ignore[index]
                    continue
                candidates.append(other)
        self.comparisons_generated += len(candidates)
        if self.config.enable_comparison_cleaning:
            survivors = iwnp(candidates)
        else:
            survivors = list(dict.fromkeys(candidates))
        self.comparisons_after_cleaning += len(survivors)
        comparisons = [Comparison(left=profile, right=o) for o in survivors]
        scored = self.co(
            MaterializedComparisons(profile=profile, comparisons=comparisons)
        )
        matches = self.cl(ScoredComparisons(profile=profile, scored=scored.scored))
        self.elapsed_seconds += time.perf_counter() - start
        return matches

    def process_many(self, entities: Iterable[EntityDescription]) -> ERResult:
        matches: list[Match] = []
        count = 0
        for entity in entities:
            matches.extend(self.process(entity))
            count += 1
        return ERResult(
            entities_processed=count,
            matches=matches,
            comparisons_generated=self.comparisons_generated,
            comparisons_after_cleaning=self.comparisons_after_cleaning,
            blocks_pruned=self.pruned_blocks,
            elapsed_seconds=self.elapsed_seconds,
        )

    def block_state_bytes(self) -> int:
        """Approximate in-memory size of the block collection."""
        return approx_block_bytes(self._blocks)


def approx_block_bytes(blocks: dict) -> int:
    """Shallow-ish size estimate of a block collection.

    Counts the dict, the per-block lists, the member references, and — for
    profile members — the attribute strings and token sets once per block
    occurrence (which is the point: inline profiles are duplicated per
    block, identifiers are not).
    """
    total = sys.getsizeof(blocks)
    for key, members in blocks.items():
        total += sys.getsizeof(key) + sys.getsizeof(members)
        for member in members:
            total += sys.getsizeof(member)
            if isinstance(member, Profile):
                total += sys.getsizeof(member.tokens)
                total += sum(sys.getsizeof(t) for t in member.tokens)
                for name, value in member.attributes:
                    total += sys.getsizeof(name) + sys.getsizeof(value)
    return total
