"""Data-reading substrate: standardization, tokenization, and sources."""

from repro.reading.interning import TokenDictionary, pack_ids
from repro.reading.profiles import ProfileBuilder
from repro.reading.sources import from_records, read_csv, read_jsonl
from repro.reading.stats import DatasetProfile, profile_dataset
from repro.reading.standardize import (
    DEFAULT_ABBREVIATIONS,
    DEFAULT_SPELLING,
    DEFAULT_SYNONYMS,
    Standardizer,
)
from repro.reading.tokenize import DEFAULT_STOPWORDS, Tokenizer

__all__ = [
    "ProfileBuilder",
    "TokenDictionary",
    "pack_ids",
    "DatasetProfile",
    "profile_dataset",
    "Standardizer",
    "Tokenizer",
    "from_records",
    "read_csv",
    "read_jsonl",
    "DEFAULT_ABBREVIATIONS",
    "DEFAULT_SPELLING",
    "DEFAULT_SYNONYMS",
    "DEFAULT_STOPWORDS",
]
