"""Tokenization of attribute values into blocking keys.

Token blocking (Papadakis et al.) uses every token appearing in an entity's
standardized values as a schema-agnostic blocking key.  The tokenizer here is
deliberately simple and deterministic: lowercase, split on non-alphanumeric
characters, drop very short tokens and (optionally) stopwords.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A small English stopword list; enough to exercise the "oversized block"
#: phenomenon without pretending to be a full NLP stack.
DEFAULT_STOPWORDS: frozenset[str] = frozenset(
    """a an and are as at be by for from has he in is it its of on or that the
    to was were will with this these those not no""".split()
)


@dataclass(frozen=True)
class Tokenizer:
    """Configurable value tokenizer.

    Parameters
    ----------
    min_length:
        Tokens shorter than this are discarded (purely numeric tokens are
        kept regardless, since model numbers are discriminative).
    drop_stopwords:
        Whether to remove :data:`DEFAULT_STOPWORDS`.
    stopwords:
        Custom stopword set; defaults to :data:`DEFAULT_STOPWORDS`.
    """

    min_length: int = 2
    drop_stopwords: bool = True
    stopwords: frozenset[str] = field(default_factory=lambda: DEFAULT_STOPWORDS)

    def tokens(self, text: str) -> list[str]:
        """Tokenize one string; duplicates are preserved, order stable."""
        found = _TOKEN_RE.findall(text.lower())
        out = []
        for tok in found:
            if len(tok) < self.min_length and not tok.isdigit():
                continue
            if self.drop_stopwords and tok in self.stopwords:
                continue
            out.append(tok)
        return out

    def token_set(self, texts: Iterable[str]) -> frozenset[str]:
        """The distinct tokens over several strings (the blocking keys)."""
        result: set[str] = set()
        for text in texts:
            result.update(self.tokens(text))
        return frozenset(result)
