"""Integer interning of blocking tokens: the dictionary behind the fast kernel.

Set-similarity joins over string tokens pay for string hashing, equality
chains and — worst of all in a multiprocess setting — string serialization
on every hop.  The standard remedy from the set-similarity-join literature
(see the blocking/filtering surveys of Papadakis et al.) is a *token
dictionary*: every distinct token is assigned a dense integer id at data
reading time, and all downstream similarity math runs on compact integer
sets that serialize as a few bytes per token instead of a whole string.

:class:`TokenDictionary` is that dictionary.  It is append-only (ids are
never reassigned, so any id handed out stays valid for the lifetime of the
run), assigns ids densely in first-seen order, and is safe to share between
the replicated ``f_dr`` workers of the thread framework — the fast path is
a plain dict probe; only a miss takes the lock.

One dictionary per pipeline run lives on the
:class:`~repro.core.backends.StateBackend` (like every other piece of
shared ER state) and is bound into the profile builder when the plan is
compiled with an interned comparator; see :mod:`repro.core.plan`.
"""

from __future__ import annotations

import threading
from array import array
from typing import Iterable, Iterator

__all__ = ["TokenDictionary", "pack_ids"]


def pack_ids(ids: Iterable[int]) -> array:
    """Pack token ids into a compact, picklable, *sorted* machine array.

    4-byte unsigned slots cover any realistic vocabulary; the 8-byte
    fallback keeps the function total.  ``array`` pickles as raw machine
    bytes, which is what makes the multiprocess dispatch payloads an order
    of magnitude smaller than pickled string sets.
    """
    ordered = sorted(ids)
    if ordered and ordered[-1] >= 1 << 32:
        return array("q", ordered)
    return array("I", ordered)


class TokenDictionary:
    """A bijective token ↔ dense-int-id mapping, append-only and thread-safe.

    Ids are assigned in first-seen order starting at 0, so the id space is
    exactly ``range(len(dictionary))`` — suitable for array indexing and
    compact wire formats.  Interning is idempotent: the same token always
    returns the same id, no matter which thread asks.
    """

    __slots__ = ("_ids", "_tokens", "_lock")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._tokens: list[str] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def __iter__(self) -> Iterator[str]:
        """Tokens in id order (token at position ``i`` has id ``i``)."""
        return iter(self._tokens)

    def intern(self, token: str) -> int:
        """The id of ``token``, assigning the next dense id on first sight."""
        tid = self._ids.get(token)
        if tid is None:
            with self._lock:
                tid = self._ids.get(token)
                if tid is None:
                    tid = len(self._tokens)
                    self._tokens.append(token)
                    self._ids[token] = tid
                    self._on_new_token(token, tid)
        return tid

    def _on_new_token(self, token: str, token_id: int) -> None:
        """Subclass hook: a token was just assigned its id (lock held).

        Called exactly once per distinct token, in id order, which is what
        lets :class:`~repro.core.backends.shm.SharedTokenDictionary` mirror
        the id → token column into shared memory as a plain append.
        """

    def intern_set(self, tokens: Iterable[str]) -> frozenset[int]:
        """Intern every token; the resulting set of ids."""
        intern = self.intern
        return frozenset(intern(token) for token in tokens)

    def lookup(self, token: str) -> int | None:
        """The id of ``token`` if already interned, else None (no assignment)."""
        return self._ids.get(token)

    def decode(self, token_id: int) -> str:
        """The token behind an id (raises ``IndexError`` for unknown ids)."""
        if token_id < 0:
            raise IndexError(f"token id {token_id} is negative")
        return self._tokens[token_id]

    def decode_set(self, ids: Iterable[int]) -> frozenset[str]:
        """The tokens behind a set of ids."""
        tokens = self._tokens
        return frozenset(tokens[i] for i in ids)
