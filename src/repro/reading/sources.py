"""Entity-description sources: in-memory, CSV, and JSON-lines readers.

Sources yield :class:`~repro.types.EntityDescription` objects one at a time,
which is the natural input unit of the dynamic-data pipeline.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import DatasetError
from repro.types import EntityDescription, EntityId


def from_records(
    records: Iterable[dict[str, str]],
    id_field: str = "id",
    source: str | None = None,
) -> Iterator[EntityDescription]:
    """Yield descriptions from dict records; ``id_field`` supplies the id.

    Records missing ``id_field`` get a sequential integer id.
    """
    for index, record in enumerate(records):
        eid: EntityId = record.get(id_field, index)
        attributes = tuple(
            (str(k), str(v))
            for k, v in record.items()
            if k != id_field and v is not None and str(v) != ""
        )
        yield EntityDescription(eid=eid, attributes=attributes, source=source)


def read_csv(
    path: str | Path,
    id_field: str = "id",
    source: str | None = None,
    delimiter: str = ",",
) -> Iterator[EntityDescription]:
    """Stream entity descriptions from a CSV file with a header row."""
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise DatasetError(f"CSV file {path} has no header row")
        yield from from_records(reader, id_field=id_field, source=source)


def read_jsonl(
    path: str | Path,
    id_field: str = "id",
    source: str | None = None,
) -> Iterator[EntityDescription]:
    """Stream entity descriptions from a JSON-lines file.

    Nested values are flattened with dotted attribute names, so the reader
    copes with the semi-structured inputs the paper targets.
    """
    path = Path(path)
    with path.open(encoding="utf-8") as handle:
        for line_no, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(f"{path}:{line_no + 1}: invalid JSON") from exc
            if not isinstance(record, dict):
                raise DatasetError(f"{path}:{line_no + 1}: expected an object")
            flat = _flatten(record)
            eid = flat.pop(id_field, line_no)
            attributes = tuple((k, str(v)) for k, v in flat.items())
            yield EntityDescription(eid=eid, attributes=attributes, source=source)


def _flatten(record: dict, prefix: str = "") -> dict[str, object]:
    """Flatten nested dicts/lists into dotted attribute names."""
    flat: dict[str, object] = {}
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}."))
        elif isinstance(value, (list, tuple)):
            flat[name] = " ".join(str(v) for v in value)
        else:
            flat[name] = value
    return flat
