"""Dataset profiling: the schema-heterogeneity statistics behind Table II.

The paper distinguishes its datasets by entity counts, average name-value
pairs per profile, and schema heterogeneity ("no fixed schema and
thousands of attributes that may be scarcely used").  This module computes
those statistics from any entity stream, so users can judge which
blocking method and parameters fit their data before configuring a
pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.reading.profiles import ProfileBuilder
from repro.types import EntityDescription


@dataclass(frozen=True)
class DatasetProfile:
    """Aggregate statistics of an entity collection."""

    entities: int
    distinct_attributes: int
    avg_attributes_per_entity: float
    attribute_sparsity: float
    distinct_tokens: int
    avg_tokens_per_entity: float
    token_gini: float
    heterogeneity_index: float

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        return (
            f"{self.entities} entities, "
            f"{self.distinct_attributes} distinct attribute names "
            f"({self.avg_attributes_per_entity:.1f} per entity, "
            f"sparsity {self.attribute_sparsity:.2f}), "
            f"{self.distinct_tokens} distinct tokens "
            f"({self.avg_tokens_per_entity:.1f} per entity, "
            f"Gini {self.token_gini:.2f}); "
            f"heterogeneity index {self.heterogeneity_index:.2f}"
        )


def _gini(counts: list[int]) -> float:
    """Gini coefficient of a frequency distribution (0 = uniform)."""
    if not counts:
        return 0.0
    ordered = sorted(counts)
    n = len(ordered)
    total = sum(ordered)
    if total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for i, value in enumerate(ordered, start=1):
        cumulative += value
        weighted += cumulative
    # Gini = 1 - 2 * B where B is the area under the Lorenz curve.
    lorenz_area = weighted / (n * total)
    return max(0.0, 1.0 - 2.0 * lorenz_area + 1.0 / n)


def profile_dataset(
    entities: Iterable[EntityDescription],
    builder: ProfileBuilder | None = None,
) -> DatasetProfile:
    """Compute the profiling statistics of an entity collection.

    ``heterogeneity_index`` is the fraction of attribute names used by at
    most 10% of the entities — near 0 for relational data with a fixed
    schema, approaching 1 for data-lake style inputs where most attribute
    names are rare.
    """
    builder = builder or ProfileBuilder()
    n_entities = 0
    attribute_counts: dict[str, int] = {}
    token_counts: dict[str, int] = {}
    total_attributes = 0
    total_tokens = 0
    for entity in entities:
        n_entities += 1
        names = {name for name, _ in entity.attributes}
        total_attributes += len(entity.attributes)
        for name in names:
            attribute_counts[name] = attribute_counts.get(name, 0) + 1
        profile = builder.build(entity)
        total_tokens += len(profile.tokens)
        for token in profile.tokens:
            token_counts[token] = token_counts.get(token, 0) + 1
    if n_entities == 0:
        return DatasetProfile(0, 0, 0.0, 0.0, 0, 0.0, 0.0, 0.0)
    rare_bound = max(1, math.ceil(0.1 * n_entities))
    rare_attributes = sum(1 for c in attribute_counts.values() if c <= rare_bound)
    distinct_attributes = len(attribute_counts)
    sparsity = 1.0 - (
        sum(attribute_counts.values()) / (distinct_attributes * n_entities)
        if distinct_attributes
        else 0.0
    )
    return DatasetProfile(
        entities=n_entities,
        distinct_attributes=distinct_attributes,
        avg_attributes_per_entity=total_attributes / n_entities,
        attribute_sparsity=sparsity,
        distinct_tokens=len(token_counts),
        avg_tokens_per_entity=total_tokens / n_entities,
        token_gini=_gini(list(token_counts.values())),
        heterogeneity_index=(
            rare_attributes / distinct_attributes if distinct_attributes else 0.0
        ),
    )
