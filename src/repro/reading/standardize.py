"""Value standardization applied during data reading.

The paper's data-reading step standardizes entity descriptions before
blocking: consistent spelling variants (the running example maps US
"fiber" to British "fibre"), consistent abbreviations, and generalizing
synonyms (the example maps "timber" to "wood").  This module implements a
rule-based standardizer with exactly these three rule families plus a
light plural stemmer, which is what schema-agnostic ER toolkits ship.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.types import EntityDescription

_WORD_RE = re.compile(r"[A-Za-z0-9]+")

#: US -> British spellings seen in product/building descriptions.
DEFAULT_SPELLING: dict[str, str] = {
    "fiber": "fibre",
    "color": "colour",
    "center": "centre",
    "meter": "metre",
    "aluminum": "aluminium",
    "gray": "grey",
    "theater": "theatre",
    "mold": "mould",
}

#: Abbreviation expansions.
DEFAULT_ABBREVIATIONS: dict[str, str] = {
    "st": "street",
    "ave": "avenue",
    "dept": "department",
    "corp": "corporation",
    "inc": "incorporated",
    "ltd": "limited",
    "mm": "millimetre",
    "cm": "centimetre",
    "kg": "kilogram",
    "approx": "approximately",
}

#: Synonym generalization (specific -> general), as in "timber" -> "wood".
DEFAULT_SYNONYMS: dict[str, str] = {
    "timber": "wood",
    "wooden": "wood",
    "lumber": "wood",
    "oak": "wood",
    "pine": "wood",
    "automobile": "car",
    "vehicle": "car",
    "photo": "photograph",
    "pic": "photograph",
}


def _strip_plural(token: str) -> str:
    """Very light stemming: strip common plural suffixes from long tokens."""
    if len(token) > 4 and token.endswith("ies"):
        return token[:-3] + "y"
    if len(token) > 3 and token.endswith("es") and not token.endswith("ses"):
        return token[:-2]
    if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        return token[:-1]
    return token


@dataclass(frozen=True)
class Standardizer:
    """Rule-based value standardizer.

    The word-level maps are applied in order: abbreviation expansion,
    spelling normalization, synonym generalization, then plural stripping.
    """

    spelling: Mapping[str, str] = field(default_factory=lambda: dict(DEFAULT_SPELLING))
    abbreviations: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_ABBREVIATIONS)
    )
    synonyms: Mapping[str, str] = field(default_factory=lambda: dict(DEFAULT_SYNONYMS))
    stem_plurals: bool = True

    def standardize_word(self, word: str) -> str:
        """Standardize one lowercase word through all rule families."""
        word = self.abbreviations.get(word, word)
        word = self.spelling.get(word, word)
        word = self.synonyms.get(word, word)
        if self.stem_plurals:
            word = _strip_plural(word)
        return word

    def standardize_value(self, value: str) -> str:
        """Lowercase a value and standardize each word in place."""

        def repl(match: re.Match[str]) -> str:
            return self.standardize_word(match.group(0).lower())

        return _WORD_RE.sub(repl, value.lower())

    def standardize(self, entity: EntityDescription) -> EntityDescription:
        """Return a copy of ``entity`` with standardized attribute values."""
        attributes = tuple(
            (name, self.standardize_value(value)) for name, value in entity.attributes
        )
        return EntityDescription(eid=entity.eid, attributes=attributes, source=entity.source)
