"""Building standardized profiles from raw entity descriptions.

This is the heart of the data-reading step ``f_dr``: given ``e_i`` it
produces the standardized profile ``p_i`` and the blocking-key set ``K_i``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.reading.interning import TokenDictionary
from repro.reading.standardize import Standardizer
from repro.reading.tokenize import Tokenizer
from repro.types import EntityDescription, Profile


@dataclass(frozen=True)
class ProfileBuilder:
    """Combines a :class:`Standardizer` and a :class:`Tokenizer`.

    ``build`` implements the data-reading function of the functional model:
    it standardizes attribute values and derives the blocking keys ``K_i``
    from the standardized values (token blocking keys).

    When a :class:`~repro.reading.interning.TokenDictionary` is attached,
    every token is additionally interned at tokenize time and the produced
    profiles carry ``token_ids`` — the dense integer view the comparison
    kernel and the multiprocess dispatch run on.  Interning rides the same
    memoization as standardization, so its cost is paid once per distinct
    attribute value, not once per entity.

    Attribute values repeat heavily in real data (and across duplicates),
    so standardization + tokenization results are memoized per distinct
    value; the cache is bounded to keep streaming memory flat.
    """

    standardizer: Standardizer = field(default_factory=Standardizer)
    tokenizer: Tokenizer = field(default_factory=Tokenizer)
    dictionary: TokenDictionary | None = None
    cache_size: int = 100_000
    _cache: dict[str, tuple[str, frozenset[str], frozenset[int] | None]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def with_dictionary(self, dictionary: TokenDictionary) -> "ProfileBuilder":
        """A copy of this builder interning into ``dictionary`` (fresh cache)."""
        return dataclasses.replace(self, dictionary=dictionary, _cache={})

    def _value(self, value: str) -> tuple[str, frozenset[str], frozenset[int] | None]:
        cached = self._cache.get(value)
        if cached is not None:
            return cached
        standardized = self.standardizer.standardize_value(value)
        tokens = self.tokenizer.token_set((standardized,))
        ids = self.dictionary.intern_set(tokens) if self.dictionary is not None else None
        result = (standardized, tokens, ids)
        if len(self._cache) >= self.cache_size:
            self._cache.clear()
        self._cache[value] = result
        return result

    def build(self, entity: EntityDescription) -> Profile:
        """Produce the profile ``p_i`` (with keys ``K_i``) for ``e_i``."""
        attributes = []
        tokens: set[str] = set()
        interning = self.dictionary is not None
        ids: set[int] = set()
        for name, value in entity.attributes:
            standardized, value_tokens, value_ids = self._value(value)
            attributes.append((name, standardized))
            tokens.update(value_tokens)
            if interning:
                ids.update(value_ids)  # type: ignore[arg-type]
        return Profile(
            eid=entity.eid,
            attributes=tuple(attributes),
            tokens=frozenset(tokens),
            source=entity.source,
            token_ids=frozenset(ids) if interning else None,
        )
