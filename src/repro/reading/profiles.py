"""Building standardized profiles from raw entity descriptions.

This is the heart of the data-reading step ``f_dr``: given ``e_i`` it
produces the standardized profile ``p_i`` and the blocking-key set ``K_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.reading.standardize import Standardizer
from repro.reading.tokenize import Tokenizer
from repro.types import EntityDescription, Profile


@dataclass(frozen=True)
class ProfileBuilder:
    """Combines a :class:`Standardizer` and a :class:`Tokenizer`.

    ``build`` implements the data-reading function of the functional model:
    it standardizes attribute values and derives the blocking keys ``K_i``
    from the standardized values (token blocking keys).

    Attribute values repeat heavily in real data (and across duplicates),
    so standardization + tokenization results are memoized per distinct
    value; the cache is bounded to keep streaming memory flat.
    """

    standardizer: Standardizer = field(default_factory=Standardizer)
    tokenizer: Tokenizer = field(default_factory=Tokenizer)
    cache_size: int = 100_000
    _cache: dict[str, tuple[str, frozenset[str]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _value(self, value: str) -> tuple[str, frozenset[str]]:
        cached = self._cache.get(value)
        if cached is not None:
            return cached
        standardized = self.standardizer.standardize_value(value)
        result = (standardized, self.tokenizer.token_set((standardized,)))
        if len(self._cache) >= self.cache_size:
            self._cache.clear()
        self._cache[value] = result
        return result

    def build(self, entity: EntityDescription) -> Profile:
        """Produce the profile ``p_i`` (with keys ``K_i``) for ``e_i``."""
        attributes = []
        tokens: set[str] = set()
        for name, value in entity.attributes:
            standardized, value_tokens = self._value(value)
            attributes.append((name, standardized))
            tokens.update(value_tokens)
        return Profile(
            eid=entity.eid,
            attributes=tuple(attributes),
            tokens=frozenset(tokens),
            source=entity.source,
        )
