"""Command-line interface: resolve files, link catalogs, generate data.

Subcommands
-----------
``dedupe``    Dirty ER over one CSV/JSON-lines file; prints matched pairs
              (optionally clusters) as JSON lines.
``link``      Clean-clean ER across two files.
``generate``  Emit a synthetic catalog dataset (entities as JSON lines,
              ground truth alongside) for experimentation.
``metrics``   Run a file through a chosen executor with the metrics
              registry enabled and print the Prometheus text exposition
              (or a JSON snapshot) of the run.
``check``     Run the correctness oracle suite — metamorphic relations
              plus runtime invariants — for a seed; non-zero exit on any
              violation, with the shrunk minimal counterexample and a
              replay command printed.
``resume``    Continue a crashed (or suspended) durable ``dedupe`` run
              from its WAL directory: recover state, re-feed the
              uncommitted suffix of the input, print the full final
              match set.

Examples
--------
    repro-er dedupe products.csv --threshold 0.6 --clusters
    repro-er dedupe products.csv --wal-dir ./run --checkpoint-every 500
    repro-er resume ./run products.csv
    repro-er link shop_a.csv shop_b.jsonl --alpha-fraction 0.05
    repro-er generate cora --scale 0.5 --out cora.jsonl
    repro-er metrics products.csv --executor thread --format prometheus
    repro-er check --seed 2021 --examples 10
    repro-er check --seed 2021 --property resume-equals-uninterrupted
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.classification import ThresholdClassifier
from repro.clustering import IncrementalClusterer
from repro.core import StreamERConfig, StreamERPipeline, combine
from repro.datasets import DATASET_NAMES, load, save_ground_truth
from repro.errors import ReproError
from repro.reading.sources import read_csv, read_jsonl
from repro.types import EntityDescription, EntityId


def _read_file(path: str, source: str | None = None) -> Iterable[EntityDescription]:
    suffix = Path(path).suffix.lower()
    if suffix in (".jsonl", ".ndjson", ".json"):
        return read_jsonl(path, source=source)
    return read_csv(path, source=source)


def _encode_id(eid: EntityId) -> object:
    if isinstance(eid, tuple):
        return list(eid)
    return eid


#: Floor for the derived block-pruning bound: on small inputs a strict
#: fraction of |D| would prune every block of size 2 and find nothing.
MIN_ALPHA = 25


def _config(args: argparse.Namespace, dataset_size: int, clean_clean: bool) -> StreamERConfig:
    alpha = max(
        MIN_ALPHA, StreamERConfig.alpha_for(max(dataset_size, 2), args.alpha_fraction)
    )
    return StreamERConfig(
        alpha=alpha,
        beta=args.beta,
        clean_clean=clean_clean,
        classifier=ThresholdClassifier(args.threshold),
    )


def _emit(record: dict, out) -> None:
    out.write(json.dumps(record) + "\n")


def cmd_dedupe(args: argparse.Namespace, out) -> int:
    entities = list(_read_file(args.file))
    if not entities:
        print("no entities found", file=sys.stderr)
        return 1
    pipeline = StreamERPipeline(
        _config(args, len(entities), False),
        instrument=False,
        wal_dir=args.wal_dir,
        checkpoint_every=args.checkpoint_every,
        fsync=args.fsync,
    )
    clusterer = IncrementalClusterer()
    for entity, matches in pipeline.stream(entities):
        if args.throttle:
            time.sleep(args.throttle)
        for match in matches:
            clusterer.add_match(match)
            if not args.clusters:
                _emit(
                    {
                        "left": _encode_id(match.left),
                        "right": _encode_id(match.right),
                        "similarity": round(match.similarity, 4),
                    },
                    out,
                )
    pipeline.close()
    if args.clusters:
        for cluster in clusterer.clusters():
            _emit({"cluster": [_encode_id(e) for e in sorted(cluster, key=repr)]}, out)
    summary = pipeline.summary()
    print(
        f"processed {summary.entities_processed} entities, "
        f"{len(summary.matches)} matches, "
        f"{summary.comparisons_after_cleaning} comparisons",
        file=sys.stderr,
    )
    return 0


def cmd_link(args: argparse.Namespace, out) -> int:
    left = list(_read_file(args.left))
    right = list(_read_file(args.right))
    if not left or not right:
        print("both inputs must be non-empty", file=sys.stderr)
        return 1
    stream = list(combine(left, right))
    pipeline = StreamERPipeline(_config(args, len(stream), True), instrument=False)
    for _, matches in pipeline.stream(stream):
        for match in matches:
            _emit(
                {
                    "left": _encode_id(match.left),
                    "right": _encode_id(match.right),
                    "similarity": round(match.similarity, 4),
                },
                out,
            )
    summary = pipeline.summary()
    print(
        f"linked {len(summary.matches)} pairs across "
        f"{len(left)}+{len(right)} records",
        file=sys.stderr,
    )
    return 0


def cmd_profile(args: argparse.Namespace, out) -> int:
    from repro.reading import profile_dataset

    entities = list(_read_file(args.file))
    if not entities:
        print("no entities found", file=sys.stderr)
        return 1
    report = profile_dataset(entities)
    _emit(
        {
            "entities": report.entities,
            "distinct_attributes": report.distinct_attributes,
            "avg_attributes_per_entity": round(report.avg_attributes_per_entity, 2),
            "attribute_sparsity": round(report.attribute_sparsity, 3),
            "distinct_tokens": report.distinct_tokens,
            "avg_tokens_per_entity": round(report.avg_tokens_per_entity, 2),
            "token_gini": round(report.token_gini, 3),
            "heterogeneity_index": round(report.heterogeneity_index, 3),
        },
        out,
    )
    print(report.summary(), file=sys.stderr)
    return 0


def cmd_metrics(args: argparse.Namespace, out) -> int:
    from repro.observability import MetricsRegistry, to_json, to_prometheus

    entities = list(_read_file(args.file))
    if not entities:
        print("no entities found", file=sys.stderr)
        return 1
    registry = MetricsRegistry()
    config = _config(args, len(entities), False)
    if args.executor == "seq":
        pipeline = StreamERPipeline(config, instrument=False, registry=registry)
        pipeline.process_many(entities, on_error="dead_letter")
    elif args.executor == "thread":
        from repro.parallel import ParallelERPipeline

        pipeline = ParallelERPipeline(
            config, processes=args.processes, registry=registry
        )
        pipeline.run(entities)
    else:  # mp
        from repro.parallel import MultiprocessERPipeline

        pipeline = MultiprocessERPipeline(
            config, workers=max(2, args.processes // 4), registry=registry
        )
        pipeline.run(entities)
    if args.format == "prometheus":
        text = to_prometheus(registry)
    else:
        text = json.dumps(to_json(registry), indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
    else:
        out.write(text)
    print(
        f"{args.executor} run over {len(entities)} entities: "
        f"{len(registry.names())} metric families",
        file=sys.stderr,
    )
    return 0


def cmd_check(args: argparse.Namespace, out) -> int:
    from repro.proptest import (
        relation_names,
        replay_command,
        run_suite,
        self_test_relation,
    )

    if args.list:
        for name in relation_names():
            out.write(name + "\n")
        return 0
    extra = []
    names = list(args.property) if args.property else None
    if args.self_test_failure and (names is None or "self-test-failure" not in names):
        names = (names or []) + ["self-test-failure"]
    if names and "self-test-failure" in names:
        # A printed replay command names the relation directly; keep it
        # resolvable without also passing --self-test-failure.
        extra.append(self_test_relation())
    try:
        report = run_suite(
            seed=args.seed,
            examples=args.examples,
            names=names,
            extra_relations=extra,
            shrink_budget=args.shrink_budget,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    for prop in report.reports:
        status = "ok" if prop.ok else "FAIL"
        print(f"{prop.name}: {status} ({prop.examples} examples)", file=sys.stderr)
    failures = report.failures()
    if not failures:
        print(f"all {len(report.reports)} properties held (seed {args.seed})",
              file=sys.stderr)
        return 0
    for failure in failures:
        out.write(failure.describe() + "\n")
        out.write(
            "replay: "
            + replay_command(failure.property, failure.seed, args.examples)
            + "\n"
        )
    print(f"{len(failures)} propert(y/ies) falsified", file=sys.stderr)
    return 1


def cmd_resume(args: argparse.Namespace, out) -> int:
    from repro.core.backends import DurableBackend

    # The run's parameters are pinned in its meta.json fingerprint —
    # rebuilding the config from it (rather than trusting flags) is what
    # guarantees the resumed fold has the same semantics.
    stored = DurableBackend.stored_fingerprint(args.wal_dir)
    config = StreamERConfig(
        alpha=int(stored["alpha"]),
        beta=float(stored["beta"]),
        clean_clean=bool(stored.get("clean_clean")),
        enable_block_cleaning=bool(stored.get("enable_block_cleaning", True)),
        enable_comparison_cleaning=bool(
            stored.get("enable_comparison_cleaning", True)
        ),
        classifier=ThresholdClassifier(float(stored.get("threshold", 0.5))),
    )
    pipeline = StreamERPipeline(
        config,
        instrument=False,
        wal_dir=args.wal_dir,
        resume=True,
        checkpoint_every=args.checkpoint_every,
        fsync=args.fsync,
    )
    skip = pipeline.entities_processed
    entities = list(_read_file(args.file))
    remaining = entities[skip:]
    for entity in remaining:
        if args.throttle:
            time.sleep(args.throttle)
        pipeline.process(entity)
    pipeline.close()
    matches = pipeline.backend.matches.matches()
    for match in matches:
        _emit(
            {
                "left": _encode_id(match.left),
                "right": _encode_id(match.right),
                "similarity": round(match.similarity, 4),
            },
            out,
        )
    print(
        f"resumed at entity {skip}, re-fed {len(remaining)}, "
        f"{len(matches)} total matches",
        file=sys.stderr,
    )
    return 0


def cmd_generate(args: argparse.Namespace, out) -> int:
    dataset = load(args.dataset, scale=args.scale)
    target = Path(args.out) if args.out else None
    handle = target.open("w", encoding="utf-8") if target else out
    try:
        for entity in dataset.entities:
            record: dict = {"id": _encode_id(entity.eid)}
            if entity.source:
                record["source"] = entity.source
            for name, value in entity.attributes:
                record.setdefault(name, value)
            handle.write(json.dumps(record) + "\n")
    finally:
        if target:
            handle.close()
    if args.ground_truth:
        save_ground_truth(dataset.ground_truth, args.ground_truth)
    print(
        f"generated {len(dataset.entities)} entities "
        f"({len(dataset.ground_truth)} true match pairs)",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-er",
        description="End-to-end entity resolution on dynamic data",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_pipeline_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--threshold", type=float, default=0.5,
                       help="match-similarity threshold (default 0.5)")
        p.add_argument("--alpha-fraction", type=float, default=0.05,
                       help="block-pruning bound as a fraction of |D|")
        p.add_argument("--beta", type=float, default=0.05,
                       help="block-ghosting ratio (Algorithm 2)")

    def add_durability_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--checkpoint-every", type=int, default=0,
                       help="entities between snapshot checkpoints "
                            "(0 = WAL only, no checkpoints)")
        p.add_argument("--fsync", choices=("always", "commit", "never"),
                       default="commit", help="WAL fsync policy")
        p.add_argument("--throttle", type=float, default=0.0,
                       help="sleep this many seconds before each entity "
                            "(crash-test pacing)")

    dedupe = sub.add_parser("dedupe", help="dirty ER over one file")
    dedupe.add_argument("file", help="CSV or JSON-lines input")
    dedupe.add_argument("--clusters", action="store_true",
                        help="emit entity clusters instead of pairs")
    dedupe.add_argument("--wal-dir",
                        help="make the run durable: write-ahead log + "
                             "checkpoints under this directory")
    add_pipeline_options(dedupe)
    add_durability_options(dedupe)
    dedupe.set_defaults(func=cmd_dedupe)

    resume = sub.add_parser(
        "resume", help="continue a crashed durable dedupe run"
    )
    resume.add_argument("wal_dir", help="durable run directory (--wal-dir)")
    resume.add_argument("file", help="the original CSV or JSON-lines input")
    add_durability_options(resume)
    resume.set_defaults(func=cmd_resume)

    link = sub.add_parser("link", help="clean-clean ER across two files")
    link.add_argument("left")
    link.add_argument("right")
    add_pipeline_options(link)
    link.set_defaults(func=cmd_link)

    profile = sub.add_parser("profile", help="schema/token statistics of a file")
    profile.add_argument("file", help="CSV or JSON-lines input")
    profile.set_defaults(func=cmd_profile)

    metrics = sub.add_parser(
        "metrics", help="run a file with metrics on; print the export"
    )
    metrics.add_argument("file", help="CSV or JSON-lines input")
    metrics.add_argument("--executor", choices=("seq", "thread", "mp"),
                         default="seq", help="which executor to run")
    metrics.add_argument("--format", choices=("prometheus", "json"),
                         default="prometheus", help="export format")
    metrics.add_argument("--processes", type=int, default=8,
                         help="worker budget for the parallel executors")
    metrics.add_argument("--out", help="write the export here (default stdout)")
    add_pipeline_options(metrics)
    metrics.set_defaults(func=cmd_metrics)

    check = sub.add_parser(
        "check", help="run the metamorphic + invariant oracle suite"
    )
    check.add_argument("--seed", type=int, default=2021,
                       help="suite seed; a failure replays bit-identically")
    check.add_argument("--examples", type=int, default=6,
                       help="examples per property (heavy ones run half)")
    check.add_argument("--property", action="append", metavar="NAME",
                       help="run only this relation (repeatable)")
    check.add_argument("--shrink-budget", type=int, default=200,
                       help="max predicate evaluations while shrinking")
    check.add_argument("--list", action="store_true",
                       help="list relation names and exit")
    check.add_argument("--self-test-failure", action="store_true",
                       help="include the intentionally failing relation "
                            "(verifies the failure path end to end)")
    check.set_defaults(func=cmd_check)

    generate = sub.add_parser("generate", help="emit a synthetic dataset")
    generate.add_argument("dataset", choices=DATASET_NAMES)
    generate.add_argument("--scale", type=float, default=None,
                          help="size multiplier (default: catalog default)")
    generate.add_argument("--out", help="entities output path (default stdout)")
    generate.add_argument("--ground-truth", help="also write ground truth here")
    generate.set_defaults(func=cmd_generate)
    return parser


def main(argv: Sequence[str] | None = None, out=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = out if out is not None else sys.stdout
    try:
        return args.func(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
