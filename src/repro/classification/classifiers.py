"""Classification of scored comparisons as matches / non-matches.

Two classifiers mirror the paper's setup:

* :class:`ThresholdClassifier` — the common strategy of classifying pairs
  whose similarity exceeds a threshold as matches.
* :class:`OracleClassifier` — classification "via lookup in the ground
  truth data (thereby assuming a perfect classifier)", which the paper uses
  throughout its evaluation so that pair completeness equals recall and
  precision is 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

from repro.types import EntityId, Match, ScoredComparison, pair_key


class Classifier(Protocol):
    """Anything that decides whether a scored comparison is a match."""

    def classify(self, scored: ScoredComparison) -> Match | None:
        """Return a Match when the pair refers to one real-world entity."""
        ...


@dataclass(frozen=True)
class ThresholdClassifier:
    """Declare a match when similarity >= ``threshold``."""

    threshold: float = 0.5

    def classify(self, scored: ScoredComparison) -> Match | None:
        if scored.similarity >= self.threshold:
            left, right = scored.comparison.ids
            return Match(left=left, right=right, similarity=scored.similarity)
        return None


@dataclass(frozen=True)
class OracleClassifier:
    """Perfect classifier backed by a ground-truth set of matching pairs."""

    truth: frozenset[tuple[EntityId, EntityId]] = field(default_factory=frozenset)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[EntityId, EntityId]]) -> "OracleClassifier":
        """Build from unordered id pairs; keys are canonicalized."""
        return cls(truth=frozenset(pair_key(i, j) for i, j in pairs))

    def classify(self, scored: ScoredComparison) -> Match | None:
        key = scored.comparison.key()
        if key in self.truth:
            left, right = scored.comparison.ids
            return Match(left=left, right=right, similarity=scored.similarity)
        return None
