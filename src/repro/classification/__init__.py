"""Classification substrate."""

from repro.classification.classifiers import (
    Classifier,
    OracleClassifier,
    ThresholdClassifier,
)
from repro.classification.learned import (
    FEATURE_NAMES,
    LearnedClassifier,
    LogisticMatcher,
    pair_features,
)

__all__ = [
    "Classifier",
    "ThresholdClassifier",
    "OracleClassifier",
    "LearnedClassifier",
    "LogisticMatcher",
    "pair_features",
    "FEATURE_NAMES",
]
