"""A learned match classifier: logistic regression over similarity features.

The paper treats classification as a pluggable final step and evaluates
with a ground-truth oracle; production systems typically use a learned
model over several similarity signals.  This module provides exactly
that, self-contained (numpy only):

* :func:`pair_features` — a feature vector per profile pair: four set
  similarities over tokens, attribute-weighted similarity, and size
  signals;
* :class:`LogisticMatcher` — L2-regularized logistic regression trained
  by batch gradient descent on labeled pairs;
* :class:`LearnedClassifier` — the pipeline-facing adapter implementing
  the :class:`~repro.classification.classifiers.Classifier` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.comparison.comparator import AttributeWeightedComparator
from repro.comparison.similarity import cosine, dice, jaccard, overlap
from repro.errors import ConfigurationError
from repro.types import Match, Profile, ScoredComparison

FEATURE_NAMES: tuple[str, ...] = (
    "jaccard",
    "dice",
    "overlap",
    "cosine",
    "attribute_weighted",
    "size_ratio",
    "log_common_tokens",
)


def pair_features(left: Profile, right: Profile) -> np.ndarray:
    """The fixed feature vector of a profile pair (see FEATURE_NAMES)."""
    a, b = left.tokens, right.tokens
    common = len(a & b)
    size_ratio = (
        min(len(a), len(b)) / max(len(a), len(b)) if a and b else float(a == b)
    )
    return np.array(
        [
            jaccard(a, b),
            dice(a, b),
            overlap(a, b),
            cosine(a, b),
            AttributeWeightedComparator().score(left, right),
            size_ratio,
            np.log1p(common),
        ],
        dtype=np.float64,
    )


@dataclass
class LogisticMatcher:
    """L2-regularized logistic regression, batch gradient descent.

    Small and dependency-free on purpose: the training sets here are
    thousands of pairs, where a closed-loop GD converges in milliseconds.
    """

    learning_rate: float = 0.5
    epochs: int = 300
    l2: float = 1e-3
    weights: np.ndarray | None = field(default=None, repr=False)
    bias: float = 0.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.l2 < 0:
            raise ConfigurationError("l2 must be non-negative")

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))

    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "LogisticMatcher":
        """Train on an (n, d) feature matrix and binary labels."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ConfigurationError("features must be (n, d) aligned with labels")
        if len(np.unique(y)) < 2:
            raise ConfigurationError("training data needs both classes")
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.epochs):
            p = self._sigmoid(X @ w + b)
            error = p - y
            w -= self.learning_rate * ((X.T @ error) / n + self.l2 * w)
            b -= self.learning_rate * float(error.mean())
        self.weights = w
        self.bias = b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Match probabilities for an (n, d) feature matrix."""
        if self.weights is None:
            raise ConfigurationError("matcher is not trained")
        X = np.asarray(features, dtype=np.float64)
        return self._sigmoid(X @ self.weights + self.bias)

    def probability(self, left: Profile, right: Profile) -> float:
        """Match probability of one profile pair."""
        return float(self.predict_proba(pair_features(left, right)[None, :])[0])


@dataclass
class LearnedClassifier:
    """Pipeline classifier backed by a trained :class:`LogisticMatcher`.

    Classifies a pair as a match when the model's probability clears
    ``threshold``; the reported match similarity is the probability.
    """

    matcher: LogisticMatcher
    threshold: float = 0.5

    @classmethod
    def train(
        cls,
        labeled_pairs: Iterable[tuple[Profile, Profile, bool]],
        threshold: float = 0.5,
        matcher: LogisticMatcher | None = None,
    ) -> "LearnedClassifier":
        """Fit from (left profile, right profile, is_match) triples."""
        triples = list(labeled_pairs)
        if not triples:
            raise ConfigurationError("need labeled pairs to train")
        X = np.stack([pair_features(l, r) for l, r, _ in triples])
        y = [1 if is_match else 0 for _, _, is_match in triples]
        matcher = matcher or LogisticMatcher()
        matcher.fit(X, y)
        return cls(matcher=matcher, threshold=threshold)

    def classify(self, scored: ScoredComparison) -> Match | None:
        left = scored.comparison.left
        right = scored.comparison.right
        probability = self.matcher.probability(left, right)
        if probability >= self.threshold:
            return Match(left=left.eid, right=right.eid, similarity=probability)
        return None
