"""Exception hierarchy for the repro framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all framework errors."""


class ConfigurationError(ReproError):
    """A pipeline or algorithm was configured with invalid parameters."""


class UnknownProfileError(ReproError):
    """A comparison referenced an entity whose profile was never registered."""


class PipelineStoppedError(ReproError):
    """An operation was attempted on a parallel pipeline that has shut down.

    Also raised when ``close()``/``join()`` are given a timeout and the
    pipeline fails to drain in time; the message then carries a per-stage
    liveness report (see ``ParallelERPipeline.liveness_report``).
    """


class InjectedFault(ReproError):
    """A synthetic failure raised by the fault-injection harness.

    Only :class:`repro.parallel.faults.FaultInjector` raises this; seeing it
    outside a fault-injection run means an injector leaked into production
    wiring.
    """


class DatasetError(ReproError):
    """A dataset definition or generator received inconsistent arguments."""
