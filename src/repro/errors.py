"""Exception hierarchy for the repro framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all framework errors."""


class ConfigurationError(ReproError):
    """A pipeline or algorithm was configured with invalid parameters."""


class UnknownProfileError(ReproError):
    """A comparison referenced an entity whose profile was never registered."""


class PipelineStoppedError(ReproError):
    """An operation was attempted on a parallel pipeline that has shut down."""


class DatasetError(ReproError):
    """A dataset definition or generator received inconsistent arguments."""
