"""Exception hierarchy for the repro framework."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all framework errors."""


class ConfigurationError(ReproError):
    """A pipeline or algorithm was configured with invalid parameters."""


class UnknownProfileError(ReproError):
    """A comparison referenced an entity whose profile was never registered."""


class PipelineStoppedError(ReproError):
    """An operation was attempted on a parallel pipeline that has shut down.

    Also raised when ``close()``/``join()`` are given a timeout and the
    pipeline fails to drain in time; the message then carries a per-stage
    liveness report (see ``ParallelERPipeline.liveness_report``).
    """


class InjectedFault(ReproError):
    """A synthetic failure raised by the fault-injection harness.

    Only :class:`repro.parallel.faults.FaultInjector` raises this; seeing it
    outside a fault-injection run means an injector leaked into production
    wiring.
    """


class DatasetError(ReproError):
    """A dataset definition or generator received inconsistent arguments."""


class WalCorruptionError(ReproError):
    """A write-ahead log record failed its length/checksum validation.

    Raised for corruption *inside* the log body (a damaged record with
    valid records after it) — that is data loss, never a torn tail, and
    recovery refuses to silently drop committed records.  A damaged
    *final* record is classified as a torn tail instead and clamped to
    the last consistent prefix (see ``docs/durability.md``).
    """


class RecoveryError(ReproError):
    """Crash recovery could not reconstruct a consistent state.

    Covers a missing WAL segment chain, a commit-sequence gap during
    replay, or a configuration fingerprint mismatch between the durable
    run on disk and the pipeline trying to resume it.
    """


class SimulatedCrash(ReproError):
    """The crash-injection harness killed the run at a seeded WAL point.

    Only raised by an armed :class:`repro.durability.wal.CrashPoint`; the
    writer is dead afterwards (every further append re-raises), modelling
    a ``kill -9`` mid-write.  Seeing it outside a crash-injection test
    means a crash point leaked into production wiring.
    """


class InvariantViolation(ReproError):
    """A runtime invariant over pipeline state or stage output was violated.

    Raised (or recorded, in deferred mode) by
    :class:`repro.invariants.InvariantChecker`.  ``invariant`` names the
    violated invariant in the central registry; ``detail`` says what was
    observed.  Seeing this outside an invariant-checked run means state
    drifted in a way the O(1) counters and store contracts forbid.
    """

    def __init__(self, invariant: str, detail: str) -> None:
        super().__init__(f"invariant {invariant!r} violated: {detail}")
        self.invariant = invariant
        self.detail = detail
