"""DySimII — dynamic similarity-aware inverted indexing for real-time ER.

The second cited incremental-ER technique for structured data (Ramadan et
al., PAKDD 2013): an inverted index from tokens to records that, on each
insertion, accumulates per-candidate overlap counts and only fully
compares candidates whose estimated overlap clears a threshold.

Contrast with the paper's framework: DySimII is also schema-agnostic at
the token level, but has no counterpart of block pruning/ghosting — every
token posting list is scanned in full, so frequent tokens make insertions
progressively slower (the phenomenon the framework's block cleaning
removes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.classification.classifiers import Classifier, ThresholdClassifier
from repro.comparison.comparator import TokenSetComparator
from repro.errors import ConfigurationError
from repro.reading.profiles import ProfileBuilder
from repro.types import Comparison, EntityDescription, EntityId, Match, Profile, pair_key


@dataclass(frozen=True)
class DySimIIConfig:
    """Overlap threshold and the usual substrates.

    ``min_overlap_ratio`` is the fraction of the new record's tokens that a
    candidate must share before the full similarity is computed.
    """

    min_overlap_ratio: float = 0.3
    profile_builder: ProfileBuilder = field(default_factory=ProfileBuilder)
    comparator: TokenSetComparator = field(default_factory=TokenSetComparator)
    classifier: Classifier = field(default_factory=ThresholdClassifier)

    def __post_init__(self) -> None:
        if not 0.0 < self.min_overlap_ratio <= 1.0:
            raise ConfigurationError("min_overlap_ratio must be in (0, 1]")


class DySimII:
    """Incremental inverted-index ER over a record stream."""

    def __init__(self, config: DySimIIConfig | None = None) -> None:
        self.config = config or DySimIIConfig()
        self._index: dict[str, list[EntityId]] = {}
        self._profiles: dict[EntityId, Profile] = {}
        self._matches: list[Match] = []
        self._match_keys: set[tuple[EntityId, EntityId]] = set()
        self.comparisons = 0
        self.candidates_scanned = 0
        self.total_seconds = 0.0

    def __len__(self) -> int:
        return len(self._profiles)

    @property
    def matches(self) -> list[Match]:
        return list(self._matches)

    @property
    def match_pairs(self) -> set[tuple[EntityId, EntityId]]:
        return set(self._match_keys)

    def process(self, entity: EntityDescription) -> list[Match]:
        """Insert one record; returns the new matches it produced."""
        start = time.perf_counter()
        cfg = self.config
        profile = cfg.profile_builder.build(entity)
        overlap: dict[EntityId, int] = {}
        for token in profile.tokens:
            postings = self._index.get(token)
            if postings:
                self.candidates_scanned += len(postings)
                for candidate in postings:
                    overlap[candidate] = overlap.get(candidate, 0) + 1
        needed = max(1, int(cfg.min_overlap_ratio * max(1, len(profile.tokens))))
        found: list[Match] = []
        for candidate, shared in overlap.items():
            if shared < needed or candidate == profile.eid:
                continue
            other = self._profiles[candidate]
            scored = cfg.comparator.compare(Comparison(left=profile, right=other))
            self.comparisons += 1
            match = cfg.classifier.classify(scored)
            if match is not None:
                canonical = pair_key(match.left, match.right)
                if canonical not in self._match_keys:
                    self._match_keys.add(canonical)
                    self._matches.append(match)
                    found.append(match)
        for token in profile.tokens:
            self._index.setdefault(token, []).append(profile.eid)
        self._profiles[profile.eid] = profile
        self.total_seconds += time.perf_counter() - start
        return found

    def process_many(self, entities: Iterable[EntityDescription]) -> list[Match]:
        out: list[Match] = []
        for entity in entities:
            out.extend(self.process(entity))
        return out
