"""Dynamic-ER baselines for structured data, from the cited related work."""

from repro.baselines.dysni import DySNI, DySNIConfig, default_sorting_key
from repro.baselines.dysimii import DySimII, DySimIIConfig

__all__ = [
    "DySNI",
    "DySNIConfig",
    "default_sorting_key",
    "DySimII",
    "DySimIIConfig",
]
