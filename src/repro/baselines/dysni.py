"""DySNI — dynamic sorted-neighborhood indexing for real-time ER.

The paper cites Ramadan et al.'s dynamic sorted-neighborhood index as the
representative incremental-ER technique for *relational* data ("they
target relational data and do not trivially extend to ER on heterogeneous
data").  We implement it as an additional baseline so the claim can be
exercised: DySNI maintains records sorted by a schema-dependent key and,
on each insertion, compares the new record against its ``w`` neighbors on
each side.

The default sorting key concatenates the first tokens of the values of a
fixed attribute list — exactly the kind of schema knowledge that is
unavailable for the heterogeneous datasets, which is why DySNI degrades
there (no shared attributes → meaningless keys) while remaining a strong,
cheap baseline on relational-ish data.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.classification.classifiers import Classifier, ThresholdClassifier
from repro.comparison.comparator import TokenSetComparator
from repro.errors import ConfigurationError
from repro.reading.profiles import ProfileBuilder
from repro.types import Comparison, EntityDescription, EntityId, Match, Profile, pair_key


def default_sorting_key(profile: Profile, attributes: tuple[str, ...]) -> str:
    """First token of each of the given attributes, concatenated."""
    by_name = dict(profile.attributes)
    parts = []
    for name in attributes:
        value = by_name.get(name, "")
        token = value.split()[0] if value.split() else ""
        parts.append(token)
    if not any(parts):
        # Schema mismatch: fall back to the lexicographically first token,
        # which is all a schema-agnostic stream offers.
        parts = [min(profile.tokens) if profile.tokens else ""]
    return "|".join(parts)


@dataclass(frozen=True)
class DySNIConfig:
    """Window size, sorting-key attributes, and the usual substrates."""

    window: int = 4
    key_attributes: tuple[str, ...] = ("title", "name")
    key_function: Callable[[Profile, tuple[str, ...]], str] = default_sorting_key
    profile_builder: ProfileBuilder = field(default_factory=ProfileBuilder)
    comparator: TokenSetComparator = field(default_factory=TokenSetComparator)
    classifier: Classifier = field(default_factory=ThresholdClassifier)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")


class DySNI:
    """Incremental sorted-neighborhood ER over a record stream."""

    def __init__(self, config: DySNIConfig | None = None) -> None:
        self.config = config or DySNIConfig()
        self._keys: list[str] = []          # sorted
        self._ids: list[EntityId] = []      # aligned with _keys
        self._profiles: dict[EntityId, Profile] = {}
        self._matches: list[Match] = []
        self._match_keys: set[tuple[EntityId, EntityId]] = set()
        self.comparisons = 0
        self.total_seconds = 0.0

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def matches(self) -> list[Match]:
        return list(self._matches)

    @property
    def match_pairs(self) -> set[tuple[EntityId, EntityId]]:
        return set(self._match_keys)

    def process(self, entity: EntityDescription) -> list[Match]:
        """Insert one record; returns the new matches it produced."""
        start = time.perf_counter()
        cfg = self.config
        profile = cfg.profile_builder.build(entity)
        key = cfg.key_function(profile, cfg.key_attributes)
        index = bisect.bisect_left(self._keys, key)
        lo = max(0, index - cfg.window)
        hi = min(len(self._ids), index + cfg.window)
        found: list[Match] = []
        for neighbor_id in self._ids[lo:hi]:
            if neighbor_id == profile.eid:
                continue
            other = self._profiles[neighbor_id]
            scored = cfg.comparator.compare(Comparison(left=profile, right=other))
            self.comparisons += 1
            match = cfg.classifier.classify(scored)
            if match is not None:
                canonical = pair_key(match.left, match.right)
                if canonical not in self._match_keys:
                    self._match_keys.add(canonical)
                    self._matches.append(match)
                    found.append(match)
        self._keys.insert(index, key)
        self._ids.insert(index, profile.eid)
        self._profiles[profile.eid] = profile
        self.total_seconds += time.perf_counter() - start
        return found

    def process_many(self, entities: Iterable[EntityDescription]) -> list[Match]:
        out: list[Match] = []
        for entity in entities:
            out.extend(self.process(entity))
        return out
