"""Profile comparators: turn a pair of profiles into a similarity score.

The default comparator follows the paper's evaluation setup — Jaccard
similarity over the standardized token sets of the two profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comparison.similarity import SetSimilarity, get_set_similarity, jaccard
from repro.types import Comparison, Profile, ScoredComparison


@dataclass(frozen=True)
class TokenSetComparator:
    """Similarity over profile token sets (Jaccard by default)."""

    similarity: SetSimilarity = field(default=jaccard)

    @classmethod
    def named(cls, name: str) -> "TokenSetComparator":
        """Construct with a named similarity ('jaccard', 'dice', ...)."""
        return cls(similarity=get_set_similarity(name))

    def score(self, left: Profile, right: Profile) -> float:
        return self.similarity(left.tokens, right.tokens)

    def compare(self, comparison: Comparison) -> ScoredComparison:
        """Score a comparison tuple, preserving its identity."""
        sim = self.score(comparison.left, comparison.right)
        return ScoredComparison(comparison=comparison, similarity=sim)


@dataclass(frozen=True)
class AttributeWeightedComparator:
    """Average of per-attribute token similarities over shared attribute names.

    Falls back to whole-profile token similarity when the two profiles share
    no attribute names (the common case with heterogeneous data).
    """

    similarity: SetSimilarity = field(default=jaccard)

    def score(self, left: Profile, right: Profile) -> float:
        left_by_name: dict[str, set[str]] = {}
        for name, value in left.attributes:
            left_by_name.setdefault(name, set()).update(value.split())
        right_by_name: dict[str, set[str]] = {}
        for name, value in right.attributes:
            right_by_name.setdefault(name, set()).update(value.split())
        shared = set(left_by_name) & set(right_by_name)
        if not shared:
            return self.similarity(left.tokens, right.tokens)
        total = sum(
            self.similarity(left_by_name[name], right_by_name[name]) for name in shared
        )
        return total / len(shared)

    def compare(self, comparison: Comparison) -> ScoredComparison:
        sim = self.score(comparison.left, comparison.right)
        return ScoredComparison(comparison=comparison, similarity=sim)
