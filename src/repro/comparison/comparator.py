"""Profile comparators: turn a pair of profiles into a similarity score.

The default comparator follows the paper's evaluation setup — Jaccard
similarity over the standardized token sets of the two profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comparison.similarity import SetSimilarity, get_set_similarity, jaccard
from repro.types import Comparison, Profile, ScoredComparison


@dataclass(frozen=True)
class TokenSetComparator:
    """Similarity over profile token sets (Jaccard by default)."""

    similarity: SetSimilarity = field(default=jaccard)

    @classmethod
    def named(cls, name: str) -> "TokenSetComparator":
        """Construct with a named similarity ('jaccard', 'dice', ...)."""
        return cls(similarity=get_set_similarity(name))

    def score(self, left: Profile, right: Profile) -> float:
        return self.similarity(left.tokens, right.tokens)

    def compare(self, comparison: Comparison) -> ScoredComparison:
        """Score a comparison tuple, preserving its identity."""
        sim = self.score(comparison.left, comparison.right)
        return ScoredComparison(comparison=comparison, similarity=sim)


@dataclass(frozen=True)
class AttributeWeightedComparator:
    """Average of per-attribute token similarities over shared attribute names.

    Falls back to whole-profile token similarity when the two profiles share
    no attribute names (the common case with heterogeneous data).

    The per-profile attribute index (name → token set) is memoized: a
    profile is compared against every candidate partner it shares a block
    with, so rebuilding the index on each call did the same splitting work
    dozens of times per entity.  The cache is keyed by object identity and
    pins the profile object itself, so an entry can never be confused with
    a different profile that happens to reuse a freed id; it is bounded and
    cleared wholesale when full (the streaming posture: recent profiles are
    the ones being compared).
    """

    similarity: SetSimilarity = field(default=jaccard)
    cache_size: int = 8192
    _index_cache: dict[int, tuple[Profile, dict[str, set[str]]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _attribute_index(self, profile: Profile) -> dict[str, set[str]]:
        entry = self._index_cache.get(id(profile))
        if entry is not None and entry[0] is profile:
            return entry[1]
        by_name: dict[str, set[str]] = {}
        for name, value in profile.attributes:
            by_name.setdefault(name, set()).update(value.split())
        if len(self._index_cache) >= self.cache_size:
            self._index_cache.clear()
        self._index_cache[id(profile)] = (profile, by_name)
        return by_name

    def score(self, left: Profile, right: Profile) -> float:
        left_by_name = self._attribute_index(left)
        right_by_name = self._attribute_index(right)
        shared = set(left_by_name) & set(right_by_name)
        if not shared:
            return self.similarity(left.tokens, right.tokens)
        total = sum(
            self.similarity(left_by_name[name], right_by_name[name]) for name in shared
        )
        return total / len(shared)

    def compare(self, comparison: Comparison) -> ScoredComparison:
        sim = self.score(comparison.left, comparison.right)
        return ScoredComparison(comparison=comparison, similarity=sim)
