"""The interned comparison kernel: batched, prefiltered, threshold-aware.

``f_co`` dominates the pipeline's runtime (Figure 6), and the profiling of
the string-set path shows *where* the time goes: per-pair method dispatch
through ``comparator.compare``, a :class:`~repro.types.ScoredComparison`
allocation for every candidate — match or not — and the set intersection
itself.  This module applies the three standard levers of the
set-similarity-join literature end to end:

1. **Integer interning** — profiles carry ``token_ids`` (dense int sets
   produced by the :class:`~repro.reading.interning.TokenDictionary` at
   ``f_dr``), so similarity math runs on compact int sets and multiprocess
   payloads shrink from kilobytes of pickled strings to a few dozen bytes
   of machine integers.
2. **Length prefiltering** — for every cardinality-based measure there is a
   closed-form upper bound on the achievable similarity given only the two
   set sizes (e.g. ``min/max`` for Jaccard).  Pairs whose bound is already
   below the classification threshold are skipped *before* any
   intersection is computed.  The bound is exact algebra, not a heuristic,
   so the surviving match set is provably identical.
3. **Threshold-aware verification** — when the classification threshold is
   known, pairs whose *computed* similarity falls below it are dropped
   inside the kernel: no ``ScoredComparison`` is allocated and ``f_cl``
   never iterates them.  Since a threshold classifier rejects exactly
   those pairs, the match set is again byte-identical; only the
   non-match bookkeeping disappears.

The sorted-array intersection helpers (merge / galloping / numpy) back the
multiprocess worker path, which receives sorted id arrays off the wire; the
in-process hot loop uses frozenset intersection, which measures fastest for
the small token sets typical of entity profiles (CPython set ops are C
loops, and galloping only pays off for heavily skewed large sets).

Safety argument for the prefilter (``docs/performance.md`` repeats this
with the full derivation): with ``m = min(|a|, |b|)``, ``M = max(|a|, |b|)``
and ``i = |a ∩ b| ≤ m``,

* Jaccard ``i / (|a|+|b|-i)`` is increasing in ``i``, so ≤ ``m / M``;
* Dice ``2i / (|a|+|b|)`` ≤ ``2m / (|a|+|b|)``;
* Cosine ``i / sqrt(|a|·|b|)`` ≤ ``m / sqrt(mM) = sqrt(m/M)``;
* Overlap ``i / m`` ≤ 1 — no length bound exists, the prefilter never
  fires for it.

A pair skipped by the prefilter therefore *cannot* reach the threshold.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.comparison.similarity import SET_SIMILARITIES
from repro.errors import ConfigurationError
from repro.types import Comparison, Profile, ScoredComparison

__all__ = [
    "InternedComparator",
    "similarity_bound",
    "similarity_from_intersection",
    "intersect_size",
    "merge_intersect_size",
    "galloping_intersect_size",
]

# --------------------------------------------------------------------------
# Sorted-array intersection (worker-side payloads, large/skewed sets)

#: Below this combined size, plain merge beats numpy's call overhead.
_NUMPY_MIN_SIZE = 256
#: Size ratio beyond which per-element binary search (galloping) wins.
_GALLOP_RATIO = 16


def merge_intersect_size(a: Sequence[int], b: Sequence[int]) -> int:
    """|a ∩ b| of two *sorted, duplicate-free* sequences by linear merge."""
    i = j = size = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x = a[i]
        y = b[j]
        if x == y:
            size += 1
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return size


def galloping_intersect_size(small: Sequence[int], large: Sequence[int]) -> int:
    """|small ∩ large| by binary-searching each element of the smaller side.

    O(|small| · log |large|) — the winning strategy when one side is much
    larger than the other (hub entities in oversized blocks).
    """
    size = 0
    lo = 0
    hi = len(large)
    for x in small:
        lo = bisect_left(large, x, lo, hi)
        if lo == hi:
            break
        if large[lo] == x:
            size += 1
            lo += 1
    return size


def intersect_size(a: Sequence[int], b: Sequence[int]) -> int:
    """|a ∩ b| of two sorted, duplicate-free int sequences.

    Picks the strategy by size and skew: numpy's vectorized
    ``intersect1d`` for large inputs, galloping binary search for heavily
    skewed ones, linear merge otherwise.
    """
    la, lb = len(a), len(b)
    if la > lb:
        a, b, la, lb = b, a, lb, la
    if la == 0:
        return 0
    if la + lb >= _NUMPY_MIN_SIZE and la * _GALLOP_RATIO > lb:
        return int(
            np.intersect1d(
                np.asarray(a, dtype=np.int64),
                np.asarray(b, dtype=np.int64),
                assume_unique=True,
            ).size
        )
    if la * _GALLOP_RATIO <= lb:
        return galloping_intersect_size(a, b)
    return merge_intersect_size(a, b)


# --------------------------------------------------------------------------
# Length-based similarity bounds


def _jaccard_bound(la: int, lb: int) -> float:
    return (la / lb) if la <= lb else (lb / la)


def _dice_bound(la: int, lb: int) -> float:
    return 2.0 * min(la, lb) / (la + lb)


def _cosine_bound(la: int, lb: int) -> float:
    return math.sqrt(_jaccard_bound(la, lb))


def _overlap_bound(la: int, lb: int) -> float:
    return 1.0


_BOUNDS: dict[str, Callable[[int, int], float]] = {
    "jaccard": _jaccard_bound,
    "dice": _dice_bound,
    "cosine": _cosine_bound,
    "overlap": _overlap_bound,
}


def similarity_bound(measure: str, la: int, lb: int) -> float:
    """Upper bound on ``measure`` given only the two (nonzero) set sizes."""
    return _BOUNDS[measure](la, lb)


def similarity_from_intersection(measure: str, inter: int, la: int, lb: int) -> float:
    """The measure's value from an intersection size and the two set sizes.

    Every supported measure is a function of ``(|a ∩ b|, |a|, |b|)`` alone,
    which is what lets the multiprocess worker score packed id *arrays*
    without materializing sets.  The arithmetic mirrors
    :mod:`repro.comparison.similarity` expression for expression (including
    the two-empty-sets convention of 1.0), so results are bit-identical to
    the set-based functions.
    """
    if not la and not lb:
        return 1.0
    if measure == "jaccard":
        union = la + lb - inter
        return inter / union if union else 0.0
    if measure == "dice":
        return 2.0 * inter / (la + lb)
    if measure == "overlap":
        denom = min(la, lb)
        return inter / denom if denom else 0.0
    if measure == "cosine":
        denom = math.sqrt(la * lb)
        return inter / denom if denom else 0.0
    known = ", ".join(sorted(_BOUNDS))
    raise ConfigurationError(f"unknown measure {measure!r}; expected one of: {known}")


# --------------------------------------------------------------------------
# The comparator


@dataclass(frozen=True)
class InternedComparator:
    """Token-set similarity on interned integer ids, with filter + verify.

    Drop-in replacement for :class:`~repro.comparison.comparator.
    TokenSetComparator` restricted to the named cardinality measures
    (``jaccard``, ``dice``, ``overlap``, ``cosine``) — exactly the measures
    whose value depends only on set cardinalities, which is what makes
    scoring interned ids instead of strings *provably* answer-preserving.

    Parameters
    ----------
    measure:
        Name of the set similarity (see ``SET_SIMILARITIES``).
    threshold:
        The classification threshold, when known.  Enables threshold-aware
        verification: :meth:`compare_batch` emits only pairs whose
        similarity can still produce a match.  ``None`` (e.g. with an
        oracle classifier) emits every pair, exactly like the string path.
    prefilter:
        Whether the length prefilter may skip intersections (only
        meaningful with a ``threshold``; the emitted match set is identical
        either way — the prefilter only saves work, never changes answers).

    Profiles without ``token_ids`` (built without a dictionary, or loaded
    from an old state dump) transparently fall back to their string token
    sets; a mixed pair is scored on strings for both sides, so the measure
    always compares like with like.
    """

    measure: str = "jaccard"
    threshold: float | None = None
    prefilter: bool = True

    def __post_init__(self) -> None:
        if self.measure not in SET_SIMILARITIES:
            known = ", ".join(sorted(SET_SIMILARITIES))
            raise ConfigurationError(
                f"unknown measure {self.measure!r}; expected one of: {known}"
            )
        if self.threshold is not None and not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1] or None, got {self.threshold}"
            )

    # -- single-pair API (parity with TokenSetComparator) --------------

    def score(self, left: Profile, right: Profile) -> float:
        """The full similarity of one pair (never filtered or dropped)."""
        a = left.token_ids
        b = right.token_ids
        if a is None or b is None:
            return SET_SIMILARITIES[self.measure](left.tokens, right.tokens)
        return SET_SIMILARITIES[self.measure](a, b)  # type: ignore[arg-type]

    def compare(self, comparison: Comparison) -> ScoredComparison:
        """Score a comparison tuple, preserving its identity."""
        sim = self.score(comparison.left, comparison.right)
        return ScoredComparison(comparison=comparison, similarity=sim)

    def bound(self, la: int, lb: int) -> float:
        """Upper bound on this measure for (nonzero) set sizes la, lb."""
        return _BOUNDS[self.measure](la, lb)

    # -- batched kernel ------------------------------------------------

    def compare_batch(self, comparisons: list[Comparison]) -> list[ScoredComparison]:
        """Score a batch; with a threshold, emit only potential matches.

        Without a ``threshold`` this returns one :class:`ScoredComparison`
        per input, exactly like the per-pair path.  With one, pairs that
        provably cannot match are skipped (length prefilter) or dropped
        after scoring (verification), so the result contains exactly the
        pairs a :class:`~repro.classification.classifiers.
        ThresholdClassifier` at that threshold would accept.
        """
        out: list[ScoredComparison] = []
        append = out.append
        thr = self.threshold
        measure = self.measure
        if measure == "jaccard" and thr is not None and thr > 0.0:
            # Specialized hot loop for the default configuration (Jaccard
            # under a positive threshold): the ratio reuses the intersection
            # size for the union and sub-threshold pairs exit before any
            # allocation.  The streaming front-end compares each incoming
            # entity against its whole candidate set, so batches share their
            # left profile; detecting that run with an identity check hoists
            # the left-side attribute walk out of the loop.
            #
            # The prefilter test is the *division* form ``la / lb < thr``
            # deliberately: it evaluates the exact float expression the
            # score reaches at maximal overlap (``inter == la`` makes
            # ``inter / (la + lb - inter)`` collapse to ``la / lb``, the
            # integer arithmetic being exact), and IEEE rounding is
            # monotone, so a dropped pair provably cannot score >= thr even
            # at the last ulp.  A multiply form ``la < thr * lb`` has no
            # such guarantee.
            #
            # Empty sets: a one-sided empty set is prefiltered (0/n < thr)
            # or scores 0.0 via the zero intersection; two empty sets are
            # the only way the prefilter ratio divides by zero, which the
            # (cost-free on 3.11+) except block turns into the 1.0 that
            # ``similarity.jaccard`` defines for them.
            emit = ScoredComparison
            prev_left = None
            a: object = None
            a_is_ids = False
            la = 0
            if self.prefilter:
                for c in comparisons:
                    left = c.left
                    if left is not prev_left:
                        prev_left = left
                        a = left.token_ids
                        a_is_ids = a is not None
                        if a is None:
                            a = left.tokens
                        la = len(a)  # type: ignore[arg-type]
                    b = c.right.token_ids
                    if b is None or not a_is_ids:
                        a = left.tokens
                        la = len(a)
                        b = c.right.tokens
                        prev_left = None  # re-derive the ids view next pair
                    lb = len(b)
                    if la <= lb:
                        try:
                            if la / lb < thr:
                                continue
                        except ZeroDivisionError:
                            # la == lb == 0: two empty sets score 1.0 and
                            # 1.0 >= thr always holds for thr in (0, 1].
                            append(emit(comparison=c, similarity=1.0))
                            continue
                    elif lb / la < thr:  # la > lb, so la >= 1: never raises
                        continue
                    inter = len(a & b)  # type: ignore[operator]
                    denom = la + lb - inter
                    s = inter / denom if denom else 1.0
                    if s >= thr:
                        append(emit(comparison=c, similarity=s))
            else:
                for c in comparisons:
                    left = c.left
                    if left is not prev_left:
                        prev_left = left
                        a = left.token_ids
                        a_is_ids = a is not None
                        if a is None:
                            a = left.tokens
                        la = len(a)  # type: ignore[arg-type]
                    b = c.right.token_ids
                    if b is None or not a_is_ids:
                        a = left.tokens
                        la = len(a)
                        b = c.right.tokens
                        prev_left = None  # re-derive the ids view next pair
                    lb = len(b)
                    inter = len(a & b)  # type: ignore[operator]
                    denom = la + lb - inter
                    s = inter / denom if denom else 1.0
                    if s >= thr:
                        append(emit(comparison=c, similarity=s))
            return out
        sim = SET_SIMILARITIES[measure]
        pre = self.prefilter and thr is not None and thr > 0.0
        bound = _BOUNDS[measure]
        for c in comparisons:
            left = c.left
            right = c.right
            a = left.token_ids
            b = right.token_ids
            if a is None or b is None:
                a = left.tokens  # type: ignore[assignment]
                b = right.tokens  # type: ignore[assignment]
            la = len(a)
            lb = len(b)
            if not la or not lb:
                s = 1.0 if la == lb else 0.0
            else:
                if pre and bound(la, lb) < thr:  # type: ignore[operator]
                    continue
                s = sim(a, b)  # type: ignore[arg-type]
            if thr is None or s >= thr:
                append(ScoredComparison(comparison=c, similarity=s))
        return out
