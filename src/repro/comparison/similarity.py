"""Similarity measures over token sets and strings.

The paper's comparison stage employs Jaccard similarity over standardized
profiles; the additional measures here let users swap in alternatives and
are exercised by the extension examples.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Set

SetSimilarity = Callable[[Set[str], Set[str]], float]


def jaccard(a: Set[str], b: Set[str]) -> float:
    """Jaccard coefficient |a ∩ b| / |a ∪ b| (1.0 for two empty sets)."""
    if not a and not b:
        return 1.0
    inter = len(a & b)
    union = len(a) + len(b) - inter
    return inter / union if union else 0.0


def dice(a: Set[str], b: Set[str]) -> float:
    """Sørensen–Dice coefficient 2|a ∩ b| / (|a| + |b|)."""
    if not a and not b:
        return 1.0
    denom = len(a) + len(b)
    return 2.0 * len(a & b) / denom if denom else 0.0


def overlap(a: Set[str], b: Set[str]) -> float:
    """Overlap coefficient |a ∩ b| / min(|a|, |b|)."""
    if not a and not b:
        return 1.0
    denom = min(len(a), len(b))
    return len(a & b) / denom if denom else 0.0


def cosine(a: Set[str], b: Set[str]) -> float:
    """Set cosine (Ochiai) similarity |a ∩ b| / sqrt(|a| · |b|)."""
    if not a and not b:
        return 1.0
    denom = math.sqrt(len(a) * len(b))
    return len(a & b) / denom if denom else 0.0


def levenshtein(a: str, b: str, max_distance: int | None = None) -> int:
    """Classic dynamic-programming edit distance between two strings.

    When ``max_distance`` is given, the computation stops as soon as the
    distance provably exceeds it and a *lower bound* on the true distance
    (still > ``max_distance``) is returned instead of the exact value.  Two
    early exits apply: the length difference alone is a lower bound on the
    edit distance (``abs(len(a) - len(b))`` deletions/insertions are
    unavoidable), and DP row minima never decrease, so once a whole row
    exceeds the budget the final distance must too.  Callers that only ask
    "is the distance ≤ max_distance?" get an exact verdict either way.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    if max_distance is not None and len(a) - len(b) > max_distance:
        return len(a) - len(b)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            insert = current[j - 1] + 1
            delete = previous[j] + 1
            substitute = previous[j - 1] + (ca != cb)
            current.append(min(insert, delete, substitute))
        previous = current
        if max_distance is not None:
            row_min = min(previous)
            if row_min > max_distance:
                return row_min
    return previous[-1]


def levenshtein_similarity(a: str, b: str, min_similarity: float | None = None) -> float:
    """Edit distance normalized into [0, 1] (1.0 means identical).

    ``min_similarity`` turns on the bounded mode: when the similarity is
    provably below it, an *upper bound* on the true similarity (still <
    ``min_similarity``) is returned without finishing the DP — threshold
    callers get an exact accept/reject verdict at a fraction of the work
    for very differently sized strings.  The result is exact whenever it is
    ≥ ``min_similarity``.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    if min_similarity is None:
        return 1.0 - levenshtein(a, b) / longest
    # distance d maps to similarity 1 - d/longest >= min_similarity
    # exactly when d <= (1 - min_similarity) * longest.
    budget = int((1.0 - min_similarity) * longest + 1e-9)
    return 1.0 - levenshtein(a, b, max_distance=budget) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity between two strings."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ch:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i, flagged in enumerate(a_flags):
        if not flagged:
            continue
        while not b_flags[k]:
            k += 1
        if a[i] != b[k]:
            transpositions += 1
        k += 1
    transpositions //= 2
    m = matches
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity, boosting matches with common prefixes."""
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix == 4:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def monge_elkan(a: Iterable[str], b: Iterable[str]) -> float:
    """Monge–Elkan similarity between two token sequences.

    For every token of ``a``, the best Jaro–Winkler match in ``b`` is
    found; the result is the average of those best scores.  Asymmetric by
    definition; use :func:`monge_elkan_symmetric` for a symmetric variant.
    Tolerant of typos inside tokens, which pure set measures are not.
    """
    tokens_a = list(a)
    tokens_b = list(b)
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token in tokens_a:
        total += max(jaro_winkler(token, other) for other in tokens_b)
    return total / len(tokens_a)


def monge_elkan_symmetric(a: Iterable[str], b: Iterable[str]) -> float:
    """Mean of Monge–Elkan in both directions (symmetric, in [0, 1])."""
    tokens_a, tokens_b = list(a), list(b)
    return (monge_elkan(tokens_a, tokens_b) + monge_elkan(tokens_b, tokens_a)) / 2.0


SET_SIMILARITIES: dict[str, SetSimilarity] = {
    "jaccard": jaccard,
    "dice": dice,
    "overlap": overlap,
    "cosine": cosine,
}


def get_set_similarity(name: str) -> SetSimilarity:
    """Look up a set-similarity function by name (raises KeyError otherwise)."""
    try:
        return SET_SIMILARITIES[name]
    except KeyError:
        known = ", ".join(sorted(SET_SIMILARITIES))
        raise KeyError(f"unknown similarity '{name}'; expected one of: {known}") from None


def token_multiset(values: Iterable[str]) -> dict[str, int]:
    """Token frequency map used by weighted similarity variants."""
    counts: dict[str, int] = {}
    for value in values:
        for token in value.split():
            counts[token] = counts.get(token, 0) + 1
    return counts
