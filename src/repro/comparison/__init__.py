"""Comparison substrate: similarity measures and profile comparators."""

from repro.comparison.comparator import AttributeWeightedComparator, TokenSetComparator
from repro.comparison.kernel import (
    InternedComparator,
    galloping_intersect_size,
    intersect_size,
    merge_intersect_size,
    similarity_bound,
    similarity_from_intersection,
)
from repro.comparison.tfidf import IncrementalTfIdfComparator
from repro.comparison.similarity import (
    SET_SIMILARITIES,
    cosine,
    dice,
    get_set_similarity,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    monge_elkan_symmetric,
    overlap,
)

__all__ = [
    "TokenSetComparator",
    "AttributeWeightedComparator",
    "InternedComparator",
    "IncrementalTfIdfComparator",
    "similarity_bound",
    "similarity_from_intersection",
    "intersect_size",
    "merge_intersect_size",
    "galloping_intersect_size",
    "jaccard",
    "dice",
    "overlap",
    "cosine",
    "levenshtein",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "monge_elkan",
    "monge_elkan_symmetric",
    "get_set_similarity",
    "SET_SIMILARITIES",
]
