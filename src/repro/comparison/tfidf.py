"""Incrementally maintained TF-IDF weighted similarity.

An extension comparator for the comparison stage: instead of plain Jaccard
over token sets, weigh each token by its inverse document frequency so
that sharing a rare token counts far more than sharing a stop-word-ish
one.  Document frequencies are maintained *incrementally* as profiles flow
through the stage — no second pass over the data, matching the dynamic-
data setting.

The measure is the soft (weighted) Jaccard

    sim(a, b) = Σ_{t ∈ a∩b} idf(t) / Σ_{t ∈ a∪b} idf(t)

with idf(t) = log(1 + N / df(t)).  It is symmetric, in [0, 1], and reduces
to plain Jaccard when all tokens are equally frequent.
"""

from __future__ import annotations

import math

from repro.types import Comparison, EntityId, Profile, ScoredComparison


class IncrementalTfIdfComparator:
    """Weighted-Jaccard comparator with online document frequencies.

    Each distinct profile is counted once into the document-frequency
    table the first time the comparator sees it (either side of a
    comparison), so the statistics track exactly the profiles the pipeline
    has processed so far.
    """

    def __init__(self) -> None:
        self._df: dict[str, int] = {}
        self._documents = 0
        self._seen: set[EntityId] = set()

    @property
    def documents(self) -> int:
        """Number of distinct profiles folded into the statistics."""
        return self._documents

    def observe(self, profile: Profile) -> None:
        """Count a profile into the document frequencies (idempotent)."""
        if profile.eid in self._seen:
            return
        self._seen.add(profile.eid)
        self._documents += 1
        for token in profile.tokens:
            self._df[token] = self._df.get(token, 0) + 1

    def idf(self, token: str) -> float:
        """log(1 + N/df); unseen tokens get the maximum weight."""
        df = self._df.get(token, 0)
        if df == 0:
            return math.log(1.0 + max(self._documents, 1))
        return math.log(1.0 + self._documents / df)

    def score(self, left: Profile, right: Profile) -> float:
        self.observe(left)
        self.observe(right)
        union = left.tokens | right.tokens
        if not union:
            return 1.0
        inter = left.tokens & right.tokens
        union_weight = sum(self.idf(t) for t in union)
        if union_weight <= 0.0:
            return 0.0
        return sum(self.idf(t) for t in inter) / union_weight

    def compare(self, comparison: Comparison) -> ScoredComparison:
        sim = self.score(comparison.left, comparison.right)
        return ScoredComparison(comparison=comparison, similarity=sim)
