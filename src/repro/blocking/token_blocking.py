"""Batch token blocking (the block-building step of the baseline pipeline).

Creates one block per token that appears in the standardized values of at
least two entities — the classic schema-agnostic method for heterogeneous
data surveyed in Papadakis et al.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.types import EntityId, Profile

#: A static block collection: token key → ordered list of entity ids.
Blocks = dict[str, list[EntityId]]


def token_blocking(profiles: Iterable[Profile], min_block_size: int = 2) -> Blocks:
    """Build the initial block collection over a full dataset.

    Blocks smaller than ``min_block_size`` (default 2, the standard choice:
    a singleton block can never yield a comparison) are dropped.
    """
    blocks: Blocks = {}
    for profile in profiles:
        for token in profile.tokens:
            blocks.setdefault(token, []).append(profile.eid)
    if min_block_size > 1:
        blocks = {k: b for k, b in blocks.items() if len(b) >= min_block_size}
    return blocks


def entity_block_index(blocks: Blocks) -> dict[EntityId, list[str]]:
    """Invert a block collection: entity id → keys of blocks containing it."""
    index: dict[EntityId, list[str]] = {}
    for key, members in blocks.items():
        for eid in members:
            index.setdefault(eid, []).append(key)
    return index


def block_cardinality(members: list[EntityId], clean_clean: bool = False) -> int:
    """Number of pairwise comparisons a single block yields (``||b||``).

    Dirty ER: |b|·(|b|−1)/2.  Clean-clean ER: |b_x| · |b_y| where the two
    factors are per-source member counts (ids are (source, local) tuples).
    """
    if not clean_clean:
        n = len(members)
        return n * (n - 1) // 2
    counts: dict[object, int] = {}
    for eid in members:
        counts[eid[0]] = counts.get(eid[0], 0) + 1  # type: ignore[index]
    if len(counts) < 2:
        return 0
    sizes = list(counts.values())
    total = sum(sizes)
    # Σ_{s<t} n_s·n_t = (total² − Σ n_s²) / 2 — supports >2 sources too.
    return (total * total - sum(n * n for n in sizes)) // 2


def count_comparisons(blocks: Blocks | Mapping[str, list[EntityId]], clean_clean: bool = False) -> int:
    """Aggregate cardinality ``||B|| = Σ_b ||b||`` (redundancy-positive).

    This is the measure reported in Table III: redundant comparisons (the
    same pair in several blocks) count once per block.
    """
    return sum(block_cardinality(members, clean_clean) for members in blocks.values())


def distinct_pairs(
    blocks: Blocks | Mapping[str, list[EntityId]], clean_clean: bool = False
) -> set[tuple[EntityId, EntityId]]:
    """The distinct comparable pairs a block collection covers.

    Used to compute pair completeness after blocking; pairs are canonical
    (order-insensitive) keys.
    """
    from repro.types import pair_key

    pairs: set[tuple[EntityId, EntityId]] = set()
    for members in blocks.values():
        n = len(members)
        for a in range(n):
            for b in range(a + 1, n):
                i, j = members[a], members[b]
                if i == j:
                    continue
                if clean_clean and i[0] == j[0]:  # type: ignore[index]
                    continue
                pairs.add(pair_key(i, j))
    return pairs
