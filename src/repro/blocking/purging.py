"""Block purging (BPu): drop oversized, overly general blocks.

Given the largest block ``b_max`` in the collection and a ratio ``r`` with
0 < r < 1, purging removes every block ``b`` with ``|b| > r · |b_max|``.
"""

from __future__ import annotations

from repro.blocking.token_blocking import Blocks
from repro.errors import ConfigurationError


def block_purging(blocks: Blocks, r: float) -> Blocks:
    """Return the purged block collection (input is not modified)."""
    if not 0.0 < r < 1.0:
        raise ConfigurationError(f"purging ratio r must be in (0, 1), got {r}")
    if not blocks:
        return {}
    max_size = max(len(members) for members in blocks.values())
    bound = r * max_size
    return {key: members for key, members in blocks.items() if len(members) <= bound}
