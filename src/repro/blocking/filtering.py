"""Block filtering (BF): retain each entity only in its smallest blocks.

For an entity appearing in the block set ``B_e``, filtering keeps it in the
``⌊s · |B_e|⌋`` smallest blocks (at least one, so no entity silently drops
out of the collection) and removes it from the larger ones.  The rationale:
large blocks are general, so comparisons an entity owes to them are the
most likely to be superfluous.
"""

from __future__ import annotations

from repro.blocking.token_blocking import Blocks, entity_block_index
from repro.errors import ConfigurationError
from repro.types import EntityId


def block_filtering(blocks: Blocks, s: float) -> Blocks:
    """Return the filtered block collection (input is not modified)."""
    if not 0.0 < s < 1.0:
        raise ConfigurationError(f"filtering ratio s must be in (0, 1), got {s}")
    index = entity_block_index(blocks)
    sizes = {key: len(members) for key, members in blocks.items()}
    retained: dict[EntityId, set[str]] = {}
    for eid, keys in index.items():
        keep = max(1, int(s * len(keys)))
        # Stable tie-break on the key makes the result deterministic.
        smallest = sorted(keys, key=lambda k: (sizes[k], k))[:keep]
        retained[eid] = set(smallest)
    filtered: Blocks = {}
    for key, members in blocks.items():
        kept_members = [eid for eid in members if key in retained[eid]]
        if len(kept_members) >= 2:
            filtered[key] = kept_members
    return filtered
