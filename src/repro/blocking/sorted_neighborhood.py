"""(Batch) sorted-neighborhood blocking.

The classic windowing method: sort all entities by a key and form one
block per window position over the sorted order.  For schema-agnostic use
the sorting key defaults to the lexicographically smallest token, and
multiple passes with different key selectors can be combined (multi-pass
sorted neighborhood) to cover different corruption patterns.

This complements :mod:`repro.baselines.dysni`, which is the *dynamic*
(incremental) counterpart the paper cites.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.blocking.token_blocking import Blocks
from repro.errors import ConfigurationError
from repro.types import Profile

KeySelector = Callable[[Profile], str]


def smallest_token_key(profile: Profile) -> str:
    """Default schema-agnostic key: the lexicographically smallest token."""
    return min(profile.tokens) if profile.tokens else ""


def largest_token_key(profile: Profile) -> str:
    """Alternative pass: the lexicographically largest token."""
    return max(profile.tokens) if profile.tokens else ""


def concatenated_tokens_key(profile: Profile) -> str:
    """Alternative pass: first three sorted tokens concatenated."""
    return "".join(sorted(profile.tokens)[:3])


def sorted_neighborhood_blocking(
    profiles: Iterable[Profile],
    window: int = 4,
    key: KeySelector = smallest_token_key,
) -> Blocks:
    """One sliding-window pass over the key-sorted entities.

    Each window position becomes a block of ``window`` consecutive
    entities, so every pair within distance < ``window`` in the sorted
    order shares at least one block.
    """
    if window < 2:
        raise ConfigurationError("window must be >= 2")
    ordered = sorted(profiles, key=lambda p: (key(p), repr(p.eid)))
    blocks: Blocks = {}
    for start in range(len(ordered) - window + 1):
        members = [p.eid for p in ordered[start : start + window]]
        blocks[f"w{start}"] = members
    if not blocks and ordered:
        blocks["w0"] = [p.eid for p in ordered]
    return blocks


def multipass_sorted_neighborhood(
    profiles: Sequence[Profile],
    window: int = 4,
    keys: Sequence[KeySelector] = (smallest_token_key, largest_token_key),
) -> Blocks:
    """Union of several sorted-neighborhood passes with distinct keys."""
    blocks: Blocks = {}
    for index, key in enumerate(keys):
        for name, members in sorted_neighborhood_blocking(
            profiles, window=window, key=key
        ).items():
            blocks[f"p{index}:{name}"] = members
    return blocks
