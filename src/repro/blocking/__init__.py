"""Batch blocking substrate: block building methods + block cleaning.

Block building: token blocking (the paper's choice for heterogeneous
data) plus the survey alternatives — q-grams, extended q-grams, suffix
arrays, (multi-pass) sorted neighborhood, attribute clustering.
Block cleaning: block purging (r) and block filtering (s).
"""

from repro.blocking.attribute_clustering import (
    attribute_clustering_blocking,
    cluster_attributes,
)
from repro.blocking.filtering import block_filtering
from repro.blocking.purging import block_purging
from repro.blocking.qgrams import extended_qgrams_blocking, qgrams, qgrams_blocking
from repro.blocking.sorted_neighborhood import (
    multipass_sorted_neighborhood,
    sorted_neighborhood_blocking,
)
from repro.blocking.suffix import suffix_blocking, suffixes
from repro.blocking.token_blocking import (
    Blocks,
    block_cardinality,
    count_comparisons,
    distinct_pairs,
    entity_block_index,
    token_blocking,
)

#: Registry of block-building methods usable by the batch workflow.
BLOCK_BUILDERS = {
    "token": token_blocking,
    "qgrams": qgrams_blocking,
    "extended-qgrams": extended_qgrams_blocking,
    "suffix": suffix_blocking,
    "sorted-neighborhood": sorted_neighborhood_blocking,
    "attribute-clustering": attribute_clustering_blocking,
}

__all__ = [
    "Blocks",
    "token_blocking",
    "qgrams",
    "qgrams_blocking",
    "extended_qgrams_blocking",
    "suffixes",
    "suffix_blocking",
    "sorted_neighborhood_blocking",
    "multipass_sorted_neighborhood",
    "attribute_clustering_blocking",
    "cluster_attributes",
    "BLOCK_BUILDERS",
    "block_purging",
    "block_filtering",
    "entity_block_index",
    "block_cardinality",
    "count_comparisons",
    "distinct_pairs",
]
