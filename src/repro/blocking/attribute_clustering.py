"""Attribute-clustering blocking (Papadakis et al.).

Token blocking ignores attribute names entirely; attribute-clustering
blocking is the middle ground for highly heterogeneous data: attribute
names are grouped into clusters of *similar-content* attributes (by the
token overlap of their value vocabularies), and blocking keys are then
``(cluster, token)`` pairs — a token only co-blocks entities when it
appears under compatible attributes, cutting cross-domain noise blocks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.blocking.token_blocking import Blocks
from repro.comparison.similarity import jaccard
from repro.errors import ConfigurationError
from repro.types import Profile


def attribute_vocabularies(profiles: Iterable[Profile]) -> dict[str, set[str]]:
    """Token vocabulary of each attribute name across the dataset."""
    vocab: dict[str, set[str]] = {}
    for profile in profiles:
        for name, value in profile.attributes:
            vocab.setdefault(name, set()).update(value.split())
    return vocab


def cluster_attributes(
    vocabularies: dict[str, set[str]], threshold: float = 0.2
) -> dict[str, int]:
    """Greedy single-link clustering of attribute names by vocabulary overlap.

    Every attribute is connected to its most similar attribute when their
    Jaccard exceeds ``threshold``; connected components become clusters.
    Attributes with no sufficiently similar partner form the "glue"
    cluster 0, as in the original technique.
    """
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError("threshold must be in (0, 1)")
    names = sorted(vocabularies)
    parent = {name: name for name in names}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    linked: set[str] = set()
    for name in names:
        best, best_sim = None, threshold
        for other in names:
            if other == name:
                continue
            sim = jaccard(vocabularies[name], vocabularies[other])
            if sim > best_sim:
                best, best_sim = other, sim
        if best is not None:
            parent[find(name)] = find(best)
            linked.add(name)
            linked.add(best)

    clusters: dict[str, int] = {}
    next_id = 1
    roots: dict[str, int] = {}
    for name in names:
        if name not in linked:
            clusters[name] = 0  # the glue cluster
            continue
        root = find(name)
        if root not in roots:
            roots[root] = next_id
            next_id += 1
        clusters[name] = roots[root]
    return clusters


def attribute_clustering_blocking(
    profiles: Sequence[Profile],
    threshold: float = 0.2,
    min_block_size: int = 2,
) -> Blocks:
    """Block on (attribute cluster, token) keys."""
    clusters = cluster_attributes(attribute_vocabularies(profiles), threshold)
    blocks: Blocks = {}
    for profile in profiles:
        keys: set[str] = set()
        for name, value in profile.attributes:
            cluster = clusters.get(name, 0)
            for token in value.split():
                keys.add(f"c{cluster}:{token}")
        for key in keys:
            blocks.setdefault(key, []).append(profile.eid)
    if min_block_size > 1:
        blocks = {k: b for k, b in blocks.items() if len(b) >= min_block_size}
    return blocks
