"""Suffix-arrays blocking.

Blocks entities on the suffixes (of at least ``min_length`` characters) of
their tokens; suffixes common to too many entities are dropped via the
``max_block_size`` bound, which is the method's built-in frequency pruning
(de Vries et al.; surveyed by Christen).  Robust to prefix corruption and
to prefix-varying spellings ("färber"/"farber" share "arber").
"""

from __future__ import annotations

from typing import Iterable

from repro.blocking.token_blocking import Blocks
from repro.errors import ConfigurationError
from repro.types import Profile


def suffixes(token: str, min_length: int = 4) -> list[str]:
    """All suffixes of the token no shorter than ``min_length``."""
    if len(token) <= min_length:
        return [token]
    return [token[i:] for i in range(len(token) - min_length + 1)]


def suffix_blocking(
    profiles: Iterable[Profile],
    min_length: int = 4,
    max_block_size: int | None = 50,
    min_block_size: int = 2,
) -> Blocks:
    """Block on token suffixes, dropping overly frequent suffix blocks."""
    if min_length < 1:
        raise ConfigurationError("min_length must be >= 1")
    if max_block_size is not None and max_block_size < 2:
        raise ConfigurationError("max_block_size must be >= 2")
    blocks: Blocks = {}
    for profile in profiles:
        keys = {s for token in profile.tokens for s in suffixes(token, min_length)}
        for key in keys:
            blocks.setdefault(key, []).append(profile.eid)
    out: Blocks = {}
    for key, members in blocks.items():
        if len(members) < min_block_size:
            continue
        if max_block_size is not None and len(members) > max_block_size:
            continue
        out[key] = members
    return out
