"""Q-grams blocking: robust blocking keys for dirty values.

Token blocking misses pairs whose shared evidence is corrupted by typos
("pavilion" vs "pavillion" never share a token).  Q-grams blocking (see
Christen's indexing survey and the comparative analysis of Papadakis et
al.) splits every token into overlapping character q-grams and blocks on
those, trading many more (smaller, noisier) blocks for typo robustness.

``extended_qgrams_blocking`` implements the *extended* variant: instead of
individual q-grams, keys are concatenations of all size-``L`` subsets of a
token's q-grams (L derived from a threshold T), which restores some
discriminativeness.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.blocking.token_blocking import Blocks
from repro.errors import ConfigurationError
from repro.types import Profile


def qgrams(token: str, q: int = 3) -> list[str]:
    """Overlapping character q-grams of a token (the token itself if short)."""
    if len(token) <= q:
        return [token]
    return [token[i : i + q] for i in range(len(token) - q + 1)]


def qgrams_blocking(
    profiles: Iterable[Profile], q: int = 3, min_block_size: int = 2
) -> Blocks:
    """Block on the q-grams of every token of every profile."""
    if q < 1:
        raise ConfigurationError("q must be >= 1")
    blocks: Blocks = {}
    for profile in profiles:
        keys = {gram for token in profile.tokens for gram in qgrams(token, q)}
        for key in keys:
            blocks.setdefault(key, []).append(profile.eid)
    if min_block_size > 1:
        blocks = {k: b for k, b in blocks.items() if len(b) >= min_block_size}
    return blocks


def extended_qgram_keys(token: str, q: int = 3, threshold: float = 0.9) -> set[str]:
    """Extended q-grams keys of one token.

    With k q-grams, keys are concatenations of every combination of
    ``L = max(1, floor(k * threshold))`` q-grams, so a single corrupted
    q-gram still leaves intact keys shared with the clean spelling.
    """
    grams = qgrams(token, q)
    k = len(grams)
    if k == 1:
        return {grams[0]}
    length = max(1, int(k * threshold))
    if length >= k:
        return {"".join(grams)}
    # Cap the combinatorics for very long tokens the way JedAI does: only
    # consider dropping up to (k - length) grams where that stays small.
    if k - length > 2:
        length = k - 2
    return {"".join(combo) for combo in combinations(grams, length)}


def extended_qgrams_blocking(
    profiles: Iterable[Profile],
    q: int = 3,
    threshold: float = 0.9,
    min_block_size: int = 2,
) -> Blocks:
    """Block on extended q-gram keys."""
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError("threshold must be in (0, 1]")
    blocks: Blocks = {}
    for profile in profiles:
        keys: set[str] = set()
        for token in profile.tokens:
            keys.update(extended_qgram_keys(token, q, threshold))
        for key in keys:
            blocks.setdefault(key, []).append(profile.eid)
    if min_block_size > 1:
        blocks = {k: b for k, b in blocks.items() if len(b) >= min_block_size}
    return blocks
