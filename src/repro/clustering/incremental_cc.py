"""Incremental entity clustering over the output match stream.

The paper positions incremental clustering approaches as *complementary*
consumers of its pair output ("they typically consume pairs as output by
our framework").  This module provides exactly such a consumer: an
incremental connected-components clusterer (union-find with path
compression and union by size) that turns the stream of matches into
up-to-date entity clusters at any moment.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.types import EntityId, Match


class IncrementalClusterer:
    """Union-find over the match stream, queryable at any time."""

    def __init__(self) -> None:
        self._parent: dict[EntityId, EntityId] = {}
        self._size: dict[EntityId, int] = {}
        self._merges = 0

    def __len__(self) -> int:
        """Number of entities ever seen in a match."""
        return len(self._parent)

    @property
    def merges(self) -> int:
        """Number of union operations that actually merged two clusters."""
        return self._merges

    def _find(self, eid: EntityId) -> EntityId:
        parent = self._parent
        if eid not in parent:
            parent[eid] = eid
            self._size[eid] = 1
            return eid
        root = eid
        while parent[root] != root:
            root = parent[root]
        while parent[eid] != root:  # path compression
            parent[eid], eid = root, parent[eid]
        return root

    def add_match(self, match: Match | tuple[EntityId, EntityId]) -> bool:
        """Fold one match in; True if it merged two distinct clusters."""
        if isinstance(match, Match):
            left, right = match.left, match.right
        else:
            left, right = match
        ra, rb = self._find(left), self._find(right)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._merges += 1
        return True

    def add_matches(self, matches: Iterable[Match | tuple[EntityId, EntityId]]) -> int:
        """Fold many matches; returns the number of effective merges."""
        return sum(1 for m in matches if self.add_match(m))

    def cluster_of(self, eid: EntityId) -> frozenset[EntityId]:
        """All entities currently known to co-refer with ``eid``."""
        if eid not in self._parent:
            return frozenset((eid,))
        root = self._find(eid)
        return frozenset(e for e in self._parent if self._find(e) == root)

    def same_entity(self, a: EntityId, b: EntityId) -> bool:
        """Whether the two ids are (transitively) matched so far."""
        if a not in self._parent or b not in self._parent:
            return a == b
        return self._find(a) == self._find(b)

    def clusters(self) -> list[frozenset[EntityId]]:
        """All current clusters of size ≥ 2, largest first."""
        groups: dict[EntityId, set[EntityId]] = {}
        for eid in self._parent:
            groups.setdefault(self._find(eid), set()).add(eid)
        return sorted(
            (frozenset(g) for g in groups.values() if len(g) >= 2),
            key=len,
            reverse=True,
        )


def clusters_from_matches(
    matches: Iterable[Match | tuple[Hashable, Hashable]],
) -> list[frozenset[EntityId]]:
    """One-shot convenience: clusters of a finished match collection."""
    clusterer = IncrementalClusterer()
    clusterer.add_matches(matches)
    return clusterer.clusters()
