"""Entity clustering algorithms over *scored* match streams.

Connected components (``IncrementalClusterer``) merges aggressively: one
spurious match fuses two clusters.  The record-linkage literature the
paper points to ([5], [11]) therefore uses similarity-aware alternatives;
the two classics are implemented here for batch post-processing of the
match stream:

* **center clustering** — matches processed by descending similarity;
  the first entity of a new cluster becomes its *center*, and entities
  only join clusters through an edge to the center.
* **merge-center clustering** — like center clustering, but when a match
  connects two centers the clusters merge (less fragmentation, still far
  more conservative than connected components).
"""

from __future__ import annotations

from typing import Iterable

from repro.types import EntityId, Match


def _sorted_matches(matches: Iterable[Match]) -> list[Match]:
    return sorted(matches, key=lambda m: (-m.similarity, repr(m.key())))


def center_clustering(matches: Iterable[Match]) -> list[frozenset[EntityId]]:
    """Center clustering: entities join clusters via center edges only."""
    cluster_of: dict[EntityId, int] = {}
    center_of_cluster: dict[int, EntityId] = {}
    is_center: set[EntityId] = set()
    next_cluster = 0
    for match in _sorted_matches(matches):
        a, b = match.left, match.right
        a_known, b_known = a in cluster_of, b in cluster_of
        if not a_known and not b_known:
            cluster_of[a] = cluster_of[b] = next_cluster
            center_of_cluster[next_cluster] = a
            is_center.add(a)
            next_cluster += 1
        elif a_known != b_known:
            known, unknown = (a, b) if a_known else (b, a)
            cluster = cluster_of[known]
            if center_of_cluster[cluster] == known:
                cluster_of[unknown] = cluster
            # Edge to a non-center member: ignored (the defining rule).
        # Both known: ignored.
    groups: dict[int, set[EntityId]] = {}
    for eid, cluster in cluster_of.items():
        groups.setdefault(cluster, set()).add(eid)
    return sorted(
        (frozenset(g) for g in groups.values() if len(g) >= 2),
        key=lambda c: (-len(c), repr(sorted(c, key=repr))),
    )


def merge_center_clustering(matches: Iterable[Match]) -> list[frozenset[EntityId]]:
    """Merge-center clustering: center-center edges merge clusters."""
    parent: dict[EntityId, EntityId] = {}
    is_center: set[EntityId] = set()
    member_of: dict[EntityId, EntityId] = {}  # entity -> its center

    def find(center: EntityId) -> EntityId:
        while parent[center] != center:
            parent[center] = parent[parent[center]]
            center = parent[center]
        return center

    for match in _sorted_matches(matches):
        a, b = match.left, match.right
        a_center = member_of.get(a)
        b_center = member_of.get(b)
        if a_center is None and b_center is None:
            parent[a] = a
            is_center.add(a)
            member_of[a] = a
            member_of[b] = a
        elif a_center is not None and b_center is not None:
            if a in is_center and b in is_center:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[rb] = ra
            # member-member or member-center across clusters: ignored.
        else:
            known, unknown = (a, b) if a_center is not None else (b, a)
            known_center = member_of[known]
            if known in is_center or known == known_center:
                member_of[unknown] = known_center
            elif unknown not in member_of:
                # Edge to a plain member: unknown starts its own cluster.
                parent[unknown] = unknown
                is_center.add(unknown)
                member_of[unknown] = unknown
    groups: dict[EntityId, set[EntityId]] = {}
    for eid, center in member_of.items():
        root = find(center) if center in parent else center
        groups.setdefault(root, set()).add(eid)
    return sorted(
        (frozenset(g) for g in groups.values() if len(g) >= 2),
        key=lambda c: (-len(c), repr(sorted(c, key=repr))),
    )
