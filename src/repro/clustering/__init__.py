"""Clustering of the match stream (downstream consumers)."""

from repro.clustering.algorithms import center_clustering, merge_center_clustering
from repro.clustering.incremental_cc import IncrementalClusterer, clusters_from_matches

__all__ = [
    "IncrementalClusterer",
    "clusters_from_matches",
    "center_clustering",
    "merge_center_clustering",
]
