"""Evaluation metrics of §V: quality, pruning effectiveness, parallel gain.

* **Pair completeness (PC)** — matches still detectable after blocking and
  comparison cleaning, over all ground-truth matches.  With the oracle
  classifier PC equals recall and precision is 1 (the paper's setup).
* **Pairs quality (PQ)** — precision of the candidate set (extension
  metric, not in the paper's tables but standard in the blocking
  literature).
* **Reduction ratio (RR)** — fraction of the naive pairwise comparisons
  avoided.
* **speedup** — RT(SEQ)/RT(n) for the parallel experiments.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Iterable

from repro.types import EntityId, pair_key

Pair = tuple[EntityId, EntityId]


def _canonical(pairs: Iterable[Pair]) -> set[Pair]:
    return {pair_key(i, j) for i, j in pairs}


def pair_completeness(candidates: Iterable[Pair], truth: Iterable[Pair]) -> float:
    """|candidates ∩ truth| / |truth| (1.0 for an empty truth set)."""
    truth_set = _canonical(truth)
    if not truth_set:
        return 1.0
    found = _canonical(candidates) & truth_set
    return len(found) / len(truth_set)


def pairs_quality(candidates: Iterable[Pair], truth: Iterable[Pair]) -> float:
    """|candidates ∩ truth| / |candidates| (1.0 for an empty candidate set)."""
    candidate_set = _canonical(candidates)
    if not candidate_set:
        return 1.0
    truth_set = _canonical(truth)
    return len(candidate_set & truth_set) / len(candidate_set)


def reduction_ratio(n_candidates: int, n_entities: int, clean_clean_sizes: tuple[int, int] | None = None) -> float:
    """1 − candidates / naive comparisons.

    For clean-clean ER pass the two source sizes; naive is their product.
    """
    if clean_clean_sizes is not None:
        naive = clean_clean_sizes[0] * clean_clean_sizes[1]
    else:
        naive = n_entities * (n_entities - 1) // 2
    if naive <= 0:
        return 0.0
    return max(0.0, 1.0 - n_candidates / naive)


def precision_recall_f1(
    predicted: Iterable[Pair], truth: Iterable[Pair]
) -> tuple[float, float, float]:
    """Classic precision / recall / F1 over match pair sets."""
    predicted_set = _canonical(predicted)
    truth_set = _canonical(truth)
    if not predicted_set and not truth_set:
        return 1.0, 1.0, 1.0
    tp = len(predicted_set & truth_set)
    precision = tp / len(predicted_set) if predicted_set else 1.0
    recall = tp / len(truth_set) if truth_set else 1.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    return precision, recall, 2 * precision * recall / (precision + recall)


def speedup(sequential_seconds: float, parallel_seconds: float) -> float:
    """sp(n) = RT(SEQ) / RT(n)."""
    if parallel_seconds <= 0:
        raise ValueError("parallel runtime must be positive")
    return sequential_seconds / parallel_seconds


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of a latency sample (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencySummary":
        data = sorted(samples)
        if not data:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0)

        def pct(q: float) -> float:
            # Nearest-rank: the q-quantile is the ceil(q·n)-th order
            # statistic (1-based).  The previous floor-index form
            # ``int(q*n)`` systematically picked the *next* order statistic
            # (e.g. the 6th of 10 samples for p50), biasing every
            # percentile high — visibly so for small samples and exactly at
            # the even-n median.
            index = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
            return data[index]

        return cls(
            count=len(data),
            mean=sum(data) / len(data),
            p50=pct(0.50),
            p95=pct(0.95),
            p99=pct(0.99),
            maximum=data[-1],
        )


def throughput_series(
    completion_times: Iterable[float], window: float = 1.0
) -> list[tuple[float, float]]:
    """Output throughput over time: (window end, completions/second).

    ``completion_times`` are absolute end-to-end completion timestamps
    (seconds, any epoch); the series covers the span of the data in fixed
    windows, including empty ones.  The final window usually covers only
    part of ``window`` (streams rarely end on a window boundary), so its
    rate divides by the span the data actually covers — dividing the
    final partial count by the full width would deflate the last point of
    every series (and, for short runs, the whole series).
    """
    times = sorted(completion_times)
    if not times or window <= 0:
        return []
    start = times[0]
    end = times[-1]
    n_windows = max(1, int((end - start) / window) + 1)
    counts = [0] * n_windows
    for t in times:
        index = min(n_windows - 1, int((t - start) / window))
        counts[index] += 1
    series = []
    for k in range(n_windows):
        if k < n_windows - 1:
            span = window
        else:
            # Covered span of the final window; degenerate cases (all
            # completions at one instant, or a span too small for a
            # finite count/span division — subnormal floats overflow it
            # to inf) fall back to the full width.
            span = end - (start + k * window)
            if span < sys.float_info.min:
                span = window
        series.append((start + (k + 1) * window, counts[k] / span))
    return series
