"""Evaluation metrics and reporting."""

from repro.evaluation.metrics import (
    LatencySummary,
    pair_completeness,
    pairs_quality,
    precision_recall_f1,
    reduction_ratio,
    speedup,
    throughput_series,
)
from repro.evaluation.ascii_chart import line_chart, sparkline
from repro.evaluation.report import format_table, print_section, scientific

__all__ = [
    "pair_completeness",
    "pairs_quality",
    "reduction_ratio",
    "precision_recall_f1",
    "speedup",
    "LatencySummary",
    "throughput_series",
    "format_table",
    "scientific",
    "print_section",
    "line_chart",
    "sparkline",
]
