"""Dependency-free ASCII charts for the benchmark harness.

The figure benchmarks archive text tables; for the curve-shaped results
(speedup vs processes, throughput over time, recall curves) a quick
visual makes the *shape* — which is what the reproduction argues about —
reviewable at a glance in the archived ``benchmarks/results/`` files.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKS = "*o+x#@"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII chart.

    Each series gets its own mark character; the legend maps marks to
    series names.  Axes are linear and auto-scaled over all series.
    """
    points = [(x, y) for s in series.values() for x, y in s]
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, data) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in data:
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = mark

    top_label = f"{y_max:g}"
    bottom_label = f"{y_min:g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    lines = []
    if y_label:
        lines.append(" " * (margin - len(y_label) - 1) + y_label)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin - 1) + "┤"
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin - 1) + "┤"
        else:
            prefix = " " * (margin - 1) + "│"
        lines.append(prefix + "".join(row))
    lines.append(" " * (margin - 1) + "└" + "─" * width)
    x_axis = f"{x_min:g}".ljust(width - len(f"{x_max:g}")) + f"{x_max:g}"
    lines.append(" " * margin + x_axis)
    if x_label:
        lines.append(" " * margin + x_label.center(width))
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * margin + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """A one-line mini chart (▁▂▃▄▅▆▇█) of a value sequence."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    data = list(values)
    if width is not None and width > 0 and len(data) > width:
        # Downsample by averaging fixed-size buckets.
        bucket = len(data) / width
        data = [
            sum(data[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(data[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    lo, hi = min(data), max(data)
    if hi == lo:
        return blocks[0] * len(data)
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / (hi - lo) * len(blocks)))]
        for v in data
    )
