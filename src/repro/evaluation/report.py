"""Lightweight tabular reporting used by the benchmark harness."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render dict rows as an aligned text table (stable column order)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0])
    widths = {c: len(str(c)) for c in columns}
    rendered: list[list[str]] = []
    for row in rows:
        cells = [_fmt(row.get(c, "")) for c in columns]
        rendered.append(cells)
        for c, cell in zip(columns, cells):
            widths[c] = max(widths[c], len(cell))
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    body = "\n".join(
        "  ".join(cell.ljust(widths[c]) for c, cell in zip(columns, cells))
        for cells in rendered
    )
    return f"{header}\n{rule}\n{body}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.2E}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def scientific(value: float | int) -> str:
    """Format a count the way Table III prints them, e.g. ``2.68E+03``."""
    return f"{float(value):.2E}"


def print_section(title: str, body: str | Iterable[str] = "") -> None:
    """Print a titled section, benchmark-harness style."""
    print()
    print(f"=== {title} ===")
    if isinstance(body, str):
        if body:
            print(body)
    else:
        for line in body:
            print(line)
