"""Canonical JSON encoding of ER values for WAL records and snapshots.

One codec serves both durability artifacts so a value round-trips
identically whether it travelled through the log or a checkpoint.
Identifiers survive for every shape the framework produces — ints,
strings, and the ``(source, local_id)`` tuples of clean-clean ER — and
floats round-trip exactly (``json`` emits ``repr``-precision, which is
lossless for finite IEEE doubles), so "bit-identical match sets" means
similarities too, not just pair keys.

:func:`state_digest` is the oracle primitive behind the
``durability-replay-digest`` invariant: a canonical SHA-256 over the
complete mutable state, insensitive to backend layout (a sharded and an
in-memory backend holding the same state digest identically) but
sensitive to everything resolution semantics depend on, including block
member order.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import DatasetError
from repro.types import EntityId, Match, Profile

__all__ = [
    "encode_id",
    "decode_id",
    "encode_profile",
    "decode_profile",
    "encode_match",
    "decode_match",
    "state_digest",
]


def encode_id(eid: EntityId) -> object:
    """A JSON-safe rendering of an entity identifier (tuples tagged)."""
    if isinstance(eid, tuple):
        return {"__tuple__": [encode_id(part) for part in eid]}
    if isinstance(eid, (int, str)) or eid is None:
        return eid
    raise DatasetError(f"identifier {eid!r} is not JSON-persistable")


def decode_id(value: object) -> EntityId:
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(decode_id(part) for part in value["__tuple__"])
    return value  # type: ignore[return-value]


def encode_profile(profile: Profile) -> dict:
    """Encode a profile, remembering *whether* it carried interned ids.

    The ids themselves are not stored — they are dictionary-relative, and
    both replay paths restore the token dictionary first, so ids are
    re-attached by lookup (never re-interning, which could reorder them).
    """
    return {
        "eid": encode_id(profile.eid),
        "attributes": [[name, value] for name, value in profile.attributes],
        "tokens": sorted(profile.tokens),
        "source": profile.source,
        "interned": profile.token_ids is not None,
    }


def decode_profile(data: dict, dictionary: Any = None) -> Profile:
    """Decode a profile, re-attaching token ids from ``dictionary``.

    Ids are resolved with ``lookup`` — every token of an interned profile
    must already be in the dictionary (token-intern records precede the
    profile's registration in the WAL, and snapshots store the dictionary
    wholesale), so a miss means corruption and fails loudly.
    """
    tokens = frozenset(data["tokens"])
    token_ids: frozenset[int] | None = None
    if data.get("interned") and dictionary is not None:
        ids = []
        for token in tokens:
            tid = dictionary.lookup(token)
            if tid is None:
                raise DatasetError(
                    f"interned profile references token {token!r} missing "
                    f"from the restored dictionary"
                )
            ids.append(tid)
        token_ids = frozenset(ids)
    return Profile(
        eid=decode_id(data["eid"]),
        attributes=tuple((name, value) for name, value in data["attributes"]),
        tokens=tokens,
        source=data.get("source"),
        token_ids=token_ids,
    )


def encode_match(match: Match) -> dict:
    return {
        "left": encode_id(match.left),
        "right": encode_id(match.right),
        "similarity": match.similarity,
    }


def decode_match(data: dict) -> Match:
    return Match(
        left=decode_id(data["left"]),
        right=decode_id(data["right"]),
        similarity=data["similarity"],
    )


def _sort_key(value: object) -> str:
    return repr(value)


def state_digest(backend: Any) -> str:
    """A canonical SHA-256 over the backend's complete mutable state.

    Layout-insensitive: stores are rendered in a sorted canonical order so
    sharded and in-memory backends with equal contents digest equally.
    Block *member* order is preserved (candidate generation reads it), and
    the token dictionary is rendered in id order (id stability is part of
    the state).
    """
    blocks = {
        repr(key): [repr(eid) for eid in members]
        for key, members in backend.blocks.items()
    }
    profiles = sorted(
        (
            repr(p.eid),
            sorted(p.tokens),
            sorted(map(list, p.attributes)),
            p.source,
            sorted(p.token_ids) if p.token_ids is not None else None,
        )
        for p in backend.profiles.values()
    )
    matches = sorted(
        (repr(m.key()), repr(m.similarity)) for m in backend.matches.matches()
    )
    document = {
        "blocks": dict(sorted(blocks.items())),
        "blacklist": sorted(repr(k) for k in backend.blacklist.keys),
        "profiles": profiles,
        "matches": matches,
        "dictionary": list(getattr(backend, "dictionary", ()) or ()),
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
