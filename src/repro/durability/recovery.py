"""Crash recovery: newest snapshot + WAL tail replay, up to the last commit.

The procedure (see ``docs/durability.md``):

1. Load the newest snapshot whose integrity hash verifies, falling back
   to older ones (snapshot publication is atomic, but recovery does not
   *assume* it); no snapshot means replay from the empty state at
   epoch 0.
2. Replay every WAL segment from the snapshot's epoch forward, in epoch
   order.  The chain must be gap-free — a missing middle segment is
   unrecoverable data loss, not a torn tail.
3. In the final segment, apply records only up to the **last commit**:
   everything after it belongs to the entity that was mid-flight at the
   crash and is discarded (the caller re-feeds it).  A torn tail is
   clamped; mid-log corruption raises under ``strict``.
4. Commit sequence numbers must continue the snapshot's ``next_seq``
   exactly: a duplicate commit drops its whole buffered mutation batch
   (``block_add`` is not idempotent, so re-applying would corrupt block
   membership), gaps raise :class:`~repro.errors.RecoveryError`.
   Mutations are therefore buffered until their commit record arrives
   and applied batch-wise — which is also what makes the final-segment
   clamp exact.

Resume then truncates the final segment at the clamp offset and appends
from there — the discarded tail never survives a successful resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.durability.codec import decode_id, decode_match, decode_profile
from repro.durability.snapshot import (
    apply_state_document,
    list_snapshots,
    load_snapshot,
)
from repro.durability.wal import header_size, scan_wal, segment_path
from repro.errors import RecoveryError

__all__ = ["RecoveredState", "apply_record", "recover", "resume_pipeline"]


def apply_record(record: dict, backend: Any) -> None:
    """Re-apply one WAL state mutation to ``backend`` (commits are no-ops)."""
    op = record.get("op")
    if op == "token":
        backend.dictionary.intern(record["t"])
    elif op == "profile_put":
        backend.profiles.put(decode_profile(record["p"], backend.dictionary))
    elif op == "profile_remove":
        backend.profiles.remove(decode_id(record["eid"]))
    elif op == "block_add":
        backend.blocks.add(record["k"], decode_id(record["eid"]))
    elif op == "block_remove":
        backend.blocks.remove_block(record["k"])
    elif op == "block_discard":
        backend.blocks.discard(record["k"], decode_id(record["eid"]))
    elif op == "blacklist_add":
        backend.blacklist.add(record["k"])
    elif op == "match_add":
        backend.matches.add(decode_match(record["m"]))
    elif op == "commit":
        pass  # sequencing is validated by the recover() loop
    else:
        raise RecoveryError(f"WAL record with unknown op {op!r}: {record!r}")


@dataclass
class RecoveredState:
    """Everything :func:`recover` reconstructed from a durable run directory."""

    backend: Any
    entities_processed: int
    epoch: int  # epoch of the live (final) WAL segment
    segments_replayed: int
    records_replayed: int
    records_discarded: int  # post-last-commit tail of the final segment
    records_skipped: int  # duplicate commit batches dropped during replay
    torn_tail: bool
    resume_segment: Path
    resume_offset: int  # truncate-and-append point for the resumed writer
    next_seq: int


def recover(wal_dir: str | Path, strict: bool = True) -> RecoveredState:
    """Rebuild the last crash-consistent state from ``wal_dir``."""
    wal_dir = Path(wal_dir)
    if not wal_dir.is_dir():
        raise RecoveryError(f"durable run directory {wal_dir} does not exist")

    from repro.core.backends.memory import InMemoryBackend

    backend = InMemoryBackend()
    entities_processed = 0
    next_seq = 0
    snapshot_epoch = 0
    snapshot_errors: list[str] = []
    for epoch, path in reversed(list_snapshots(wal_dir)):
        try:
            document = load_snapshot(path)
        except RecoveryError as exc:
            snapshot_errors.append(str(exc))
            continue
        entities_processed = apply_state_document(document, backend)
        next_seq = int(document.get("next_seq", 0))
        snapshot_epoch = epoch
        break
    else:
        if snapshot_errors:
            # No snapshot verified; recovery falls back to full-log replay
            # from epoch 0, which only works if that segment still exists.
            if not segment_path(wal_dir, 0).exists():
                raise RecoveryError(
                    "no snapshot verified and the epoch-0 WAL segment is "
                    "gone: " + "; ".join(snapshot_errors)
                )

    segments = sorted(
        int(p.stem.removeprefix("wal-"))
        for p in wal_dir.glob("wal-*.log")
        if p.stem.removeprefix("wal-").isdigit()
    )
    chain = [epoch for epoch in segments if epoch >= snapshot_epoch]
    if not chain:
        raise RecoveryError(
            f"{wal_dir} has no WAL segment at or after snapshot epoch "
            f"{snapshot_epoch}"
        )
    expected_chain = list(range(chain[0], chain[0] + len(chain)))
    if chain != expected_chain or chain[0] != snapshot_epoch:
        raise RecoveryError(
            f"broken WAL segment chain in {wal_dir}: snapshot epoch "
            f"{snapshot_epoch}, segments {chain}"
        )

    records_replayed = 0
    records_discarded = 0
    records_skipped = 0
    pending: list[dict] = []  # mutations awaiting their commit record
    torn = False
    resume_segment = segment_path(wal_dir, chain[-1])
    resume_offset = header_size()
    for position, epoch in enumerate(chain):
        final = position == len(chain) - 1
        scan = scan_wal(segment_path(wal_dir, epoch), strict=strict)
        if scan.epoch != epoch:
            raise RecoveryError(
                f"{scan.path} carries epoch {scan.epoch} in its header but "
                f"is named for epoch {epoch}"
            )
        if scan.torn_tail and not final:
            # Checkpointing fsyncs a segment before opening its successor,
            # so damage before the final segment is lost data, not a torn
            # write-in-progress.
            raise RecoveryError(
                f"non-final WAL segment {scan.path.name} is damaged "
                f"({scan.tail_error}); committed records are unrecoverable"
            )
        # Clamp the final segment to its last commit: later records belong
        # to the entity that was mid-flight when the process died.
        last_commit = -1
        for index, record in enumerate(scan.records):
            if record.get("op") == "commit":
                last_commit = index
        cutoff = len(scan.records) if not final else last_commit + 1
        for record in scan.records[:cutoff]:
            if record.get("op") != "commit":
                pending.append(record)
                continue
            seq = int(record["seq"])
            if seq < next_seq:
                # A duplicate commit: its buffered batch re-states
                # mutations already applied, and block_add is not
                # idempotent — drop the whole batch, not just the marker.
                records_skipped += len(pending) + 1
                pending.clear()
                continue
            if seq > next_seq:
                raise RecoveryError(
                    f"commit sequence gap in {scan.path.name}: expected "
                    f"{next_seq}, found {seq} — a committed entity is "
                    f"missing from the log"
                )
            for buffered in pending:
                apply_record(buffered, backend)
            records_replayed += len(pending) + 1
            pending.clear()
            next_seq = seq + 1
            entities_processed = int(record.get("n", entities_processed))
        if final:
            records_discarded = len(scan.records) - cutoff
            torn = scan.torn_tail
            resume_segment = scan.path
            if cutoff:
                next_start = (
                    scan.offsets[cutoff]
                    if cutoff < len(scan.offsets)
                    else scan.valid_bytes
                )
                resume_offset = next_start
            else:
                resume_offset = header_size()
    return RecoveredState(
        backend=backend,
        entities_processed=entities_processed,
        epoch=chain[-1],
        segments_replayed=len(chain),
        records_replayed=records_replayed,
        records_discarded=records_discarded,
        records_skipped=records_skipped,
        torn_tail=torn,
        resume_segment=resume_segment,
        resume_offset=resume_offset,
        next_seq=next_seq,
    )


def resume_pipeline(config: Any, wal_dir: str | Path, **kwargs: Any):
    """A :class:`~repro.core.pipeline.StreamERPipeline` resumed from disk.

    Convenience wrapper over ``StreamERPipeline(config, wal_dir=...,
    resume=True)``: recovery replays the snapshot + WAL tail, the torn or
    uncommitted tail is truncated, and the returned pipeline continues
    appending to the recovered segment.  Entities that were mid-flight at
    the crash must be re-fed by the caller (their partial mutations were
    discarded with the tail).
    """
    from repro.core.pipeline import StreamERPipeline

    return StreamERPipeline(config, wal_dir=wal_dir, resume=True, **kwargs)
