"""Snapshot checkpoints: atomic, checksummed full-state documents.

A snapshot is a JSON document carrying the complete mutable ER state —
token dictionary first (id order), then profiles (registration order),
blocks (member order preserved), blacklist, matches (discovery order) —
plus the checkpoint epoch, the entity count, and the next commit
sequence number.  Its integrity hash covers everything but itself.

Writing follows the atomic-rename discipline: the document is written to
a temporary file in the same directory, flushed and fsynced, renamed
over the final ``snapshot-<epoch>.json`` name with :func:`os.replace`,
and the directory entry is fsynced.  A crash at any point leaves either
the previous snapshot or the new one — never a half-written file under
the final name.

The same schema is the v2 on-disk format of
:mod:`repro.core.persistence` (cooperative suspend is a checkpoint at
epoch 0 with no WAL), which is what closes the legacy round-trip gap:
the token dictionary is part of the document, so resuming never
re-interns and token ids keep their original assignment order.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.durability.codec import (
    decode_id,
    decode_match,
    decode_profile,
    encode_id,
    encode_match,
    encode_profile,
)
from repro.errors import RecoveryError

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "apply_state_document",
    "list_snapshots",
    "load_snapshot",
    "snapshot_path",
    "state_document",
    "write_snapshot",
]

SNAPSHOT_FORMAT = "repro-er-snapshot"
SNAPSHOT_VERSION = 2


def snapshot_path(wal_dir: str | Path, epoch: int) -> Path:
    """The checkpoint file written at the start of WAL epoch ``epoch``."""
    return Path(wal_dir) / f"snapshot-{epoch:08d}.json"


def list_snapshots(wal_dir: str | Path) -> list[tuple[int, Path]]:
    """All snapshot files in ``wal_dir``, ordered oldest to newest epoch."""
    found = []
    for path in Path(wal_dir).glob("snapshot-*.json"):
        stem = path.stem.removeprefix("snapshot-")
        if stem.isdigit():
            found.append((int(stem), path))
    return sorted(found)


def _document_sha(document: dict) -> str:
    body = {key: value for key, value in document.items() if key != "sha256"}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def state_document(
    backend: Any,
    entities_processed: int = 0,
    epoch: int = 0,
    next_seq: int = 0,
) -> dict:
    """Render a backend's complete state as a snapshot document."""
    document = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "epoch": epoch,
        "entities_processed": entities_processed,
        "next_seq": next_seq,
        "dictionary": list(backend.dictionary),
        "profiles": [encode_profile(p) for p in backend.profiles.values()],
        "blocks": [
            [key, [encode_id(eid) for eid in members]]
            for key, members in backend.blocks.items()
        ],
        "blacklist": sorted(backend.blacklist.keys),
        "matches": [encode_match(m) for m in backend.matches.matches()],
    }
    document["sha256"] = _document_sha(document)
    return document


def write_snapshot(path: str | Path, document: dict) -> Path:
    """Atomically publish ``document`` at ``path`` (tmp + fsync + rename)."""
    path = Path(path)
    payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read and integrity-check a snapshot document."""
    path = Path(path)
    try:
        document = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"snapshot {path} is unreadable: {exc}") from exc
    if document.get("format") != SNAPSHOT_FORMAT:
        raise RecoveryError(f"{path} is not a repro ER snapshot")
    if document.get("version") != SNAPSHOT_VERSION:
        raise RecoveryError(
            f"{path} has unsupported snapshot version "
            f"{document.get('version')} (supported: {SNAPSHOT_VERSION})"
        )
    expected = document.get("sha256")
    actual = _document_sha(document)
    if expected != actual:
        raise RecoveryError(
            f"snapshot {path} fails its integrity hash "
            f"(stored {expected}, computed {actual})"
        )
    return document


def apply_state_document(document: dict, backend: Any) -> int:
    """Load a snapshot's state into a fresh backend; returns entity count.

    Order matters: the dictionary is restored first by interning its
    tokens in stored (id) order — reproducing the original assignment
    exactly — so profile decoding can re-attach token ids by lookup.
    Blocks are rebuilt through ``add`` in member order so the O(1)
    counters come out right.
    """
    for token in document["dictionary"]:
        backend.dictionary.intern(token)
    for data in document["profiles"]:
        backend.profiles.put(decode_profile(data, backend.dictionary))
    for key, members in document["blocks"]:
        for raw in members:
            backend.blocks.add(key, decode_id(raw))
    for key in document["blacklist"]:
        backend.blacklist.add(key)
    for data in document["matches"]:
        backend.matches.add(decode_match(data))
    return int(document.get("entities_processed", 0))
