"""The append-only write-ahead log: record format, writer, scanner.

A WAL segment is::

    8-byte magic "REPROWAL" | u32 format version | u32 epoch
    then zero or more records, each:
    u32 payload length | u32 crc32(payload) | payload (compact JSON)

Every mutation of ER state (profile put/remove, block add/prune/discard,
blacklist add, match emit, token-dictionary append) is one record, plus a
``commit`` record per fully processed entity carrying a strictly
increasing sequence number — the unit of crash consistency.  Recovery
replays a segment only up to its last *commit*; everything after it
belongs to an entity that was mid-flight when the process died and will
be re-fed on resume.

Torn-tail classification on read follows the standard WAL discipline:

* fewer than 8 bytes of header left, or a payload cut short by EOF, or a
  checksum failure on the *final* record → **torn tail** (a write the
  crash interrupted); the valid prefix is the recoverable log.
* a checksum failure with valid data after it → **corruption**
  (:class:`~repro.errors.WalCorruptionError`): committed records would be
  silently dropped by clamping, so the scanner fails loudly instead.

:class:`CrashPoint` is the crash-injection hook (re-exported through
:mod:`repro.parallel.faults`): armed on a writer, it kills the run —
optionally mid-record, leaving a genuinely torn tail on disk — when the
seeded append index is reached.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, SimulatedCrash, WalCorruptionError

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "CrashPoint",
    "WalScan",
    "WalWriter",
    "encode_record",
    "scan_wal",
    "segment_path",
    "header_size",
]

WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1

_HEADER = struct.Struct("<II")  # file header: version, epoch
_RECORD = struct.Struct("<II")  # record header: payload length, crc32
_FILE_HEADER_SIZE = len(WAL_MAGIC) + _HEADER.size

#: Cap on a single record payload; a claimed length beyond it is treated
#: as garbage (torn or corrupt) rather than attempted as an allocation.
MAX_RECORD_BYTES = 64 * 1024 * 1024


def segment_path(wal_dir: str | Path, epoch: int) -> Path:
    """The WAL segment holding records written *after* snapshot ``epoch``."""
    return Path(wal_dir) / f"wal-{epoch:08d}.log"


def header_size() -> int:
    """Byte offset of the first record in a segment."""
    return _FILE_HEADER_SIZE


def encode_record(record: dict) -> bytes:
    """One framed record: length + checksum header, compact-JSON payload."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _RECORD.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class CrashPoint:
    """Kill the run when the writer's ``at_record``-th append happens.

    ``at_record`` counts appends across the whole durable run (1-based,
    spanning segment rollovers), so a crash index seeded from a WAL of a
    reference run lands on the same logical mutation.  ``torn_bytes``
    additionally writes that many bytes of the fatal record before dying,
    leaving a genuinely torn tail for recovery to clamp; ``None`` crashes
    cleanly between records.  The writer is dead afterwards: every
    further append raises :class:`~repro.errors.SimulatedCrash` again,
    like syscalls in a killed process.
    """

    at_record: int
    torn_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.at_record < 1:
            raise ConfigurationError("at_record is 1-based and must be >= 1")
        if self.torn_bytes is not None and self.torn_bytes < 0:
            raise ConfigurationError("torn_bytes cannot be negative")


class WalWriter:
    """Appends framed records to one segment file, thread-safe.

    ``fsync`` policy: ``"always"`` syncs every append, ``"commit"`` syncs
    when :meth:`sync` is called (the durable backend calls it on every
    entity commit), ``"never"`` leaves flushing to the OS until
    :meth:`close`.  All policies share the consistency guarantee — a
    crash can only lose a suffix of the log, never tear its middle —
    they trade how much committed tail is at the OS's mercy.
    """

    def __init__(
        self,
        path: str | Path,
        epoch: int,
        fsync: str = "commit",
        crash_point: CrashPoint | None = None,
        records_before: int = 0,
        resume_offset: int | None = None,
    ) -> None:
        if fsync not in ("always", "commit", "never"):
            raise ConfigurationError(
                f'fsync must be "always", "commit" or "never", got {fsync!r}'
            )
        self.path = Path(path)
        self.epoch = epoch
        self.fsync = fsync
        self.crash_point = crash_point
        #: Appends attempted over the whole run (crash-point index base).
        self.records_seen = records_before
        self.records_written = 0
        self.bytes_written = 0
        self.syncs = 0
        self._lock = threading.Lock()
        self._dead = False
        if resume_offset is not None:
            # Resuming into an existing segment: drop the discarded tail
            # (torn record + uncommitted mutations) before appending.
            with self.path.open("r+b") as handle:
                handle.truncate(resume_offset)
            self._file = self.path.open("ab")
        else:
            self._file = self.path.open("wb")
            self._file.write(WAL_MAGIC + _HEADER.pack(WAL_VERSION, epoch))
            self._file.flush()

    @property
    def offset(self) -> int:
        """Current end-of-log byte offset (records fully appended)."""
        return self._file.tell()

    def append(self, record: dict) -> int:
        """Frame and append one record; returns its byte offset."""
        data = encode_record(record)
        with self._lock:
            if self._dead:
                raise SimulatedCrash(
                    f"wal writer for {self.path.name} is dead (post-crash append)"
                )
            self.records_seen += 1
            point = self.crash_point
            if point is not None and self.records_seen >= point.at_record:
                self._dead = True
                if point.torn_bytes:
                    self._file.write(data[: point.torn_bytes])
                # Model the OS surviving a kill -9: whatever was handed to
                # write() is on disk, the rest of this record never is.
                self._file.flush()
                raise SimulatedCrash(
                    f"injected crash at WAL record {self.records_seen} "
                    f"({self.path.name}, torn_bytes={point.torn_bytes})"
                )
            at = self._file.tell()
            self._file.write(data)
            self.records_written += 1
            self.bytes_written += len(data)
            if self.fsync == "always":
                self._file.flush()
                os.fsync(self._file.fileno())
                self.syncs += 1
            return at

    def flush(self) -> None:
        with self._lock:
            if not self._dead:
                self._file.flush()

    def sync(self) -> None:
        """Flush and fsync (the ``"commit"`` policy's commit-time barrier)."""
        with self._lock:
            if self._dead:
                return
            self._file.flush()
            if self.fsync != "never":
                os.fsync(self._file.fileno())
                self.syncs += 1

    def close(self) -> None:
        with self._lock:
            if self._file.closed:
                return
            if not self._dead:
                self._file.flush()
                if self.fsync != "never":
                    os.fsync(self._file.fileno())
            self._file.close()


@dataclass
class WalScan:
    """Result of scanning one segment: its records and tail diagnosis."""

    path: Path
    epoch: int
    records: list[dict]
    offsets: list[int]  # byte offset where each record starts
    valid_bytes: int  # end offset of the last valid record
    torn_tail: bool
    tail_error: str | None


def scan_wal(path: str | Path, strict: bool = True) -> WalScan:
    """Parse a segment, classifying any damage as torn tail vs corruption.

    ``strict=False`` downgrades mid-log corruption to a clamp at the last
    valid prefix (forensic use); the default fails loudly on it, because
    clamping there drops committed records.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _FILE_HEADER_SIZE or data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalCorruptionError(f"{path} is not a repro WAL segment")
    version, epoch = _HEADER.unpack_from(data, len(WAL_MAGIC))
    if version != WAL_VERSION:
        raise WalCorruptionError(
            f"{path} has unsupported WAL version {version} "
            f"(supported: {WAL_VERSION})"
        )
    records: list[dict] = []
    offsets: list[int] = []
    pos = _FILE_HEADER_SIZE
    end = len(data)
    torn = False
    tail_error: str | None = None

    def finish(error: str | None) -> WalScan:
        return WalScan(
            path=path,
            epoch=epoch,
            records=records,
            offsets=offsets,
            valid_bytes=pos,
            torn_tail=torn,
            tail_error=error,
        )

    while pos < end:
        if end - pos < _RECORD.size:
            torn, tail_error = True, f"truncated record header at offset {pos}"
            break
        length, checksum = _RECORD.unpack_from(data, pos)
        body_start = pos + _RECORD.size
        if length > MAX_RECORD_BYTES or body_start + length > end:
            torn = True
            tail_error = (
                f"record at offset {pos} claims {length} payload bytes but "
                f"only {end - body_start} remain"
            )
            break
        payload = data[body_start : body_start + length]
        if zlib.crc32(payload) != checksum:
            record_end = body_start + length
            if record_end >= end:
                torn = True
                tail_error = f"checksum mismatch in final record at offset {pos}"
                break
            message = (
                f"checksum mismatch at offset {pos} of {path.name} with "
                f"{end - record_end} valid byte(s) after it — mid-log "
                f"corruption, not a torn tail"
            )
            if strict:
                raise WalCorruptionError(message)
            torn, tail_error = True, message
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            # The frame checksummed correctly but does not decode: that is
            # writer-side garbage, never a torn write.
            raise WalCorruptionError(
                f"record at offset {pos} of {path.name} fails to decode: {exc}"
            ) from exc
        offsets.append(pos)
        records.append(record)
        pos = body_start + length
    return finish(tail_error)
