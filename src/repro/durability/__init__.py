"""Durable ER state: write-ahead log, checkpoints, crash-consistent resume.

The paper's §III-A allows the initial state σ₁ to be seeded from a prior
resolution run; this package makes that survivable: every state mutation
is appended to a length-prefixed, checksummed write-ahead log, periodic
snapshot checkpoints bound replay time, and :func:`recover` /
:func:`resume_pipeline` rebuild the exact pre-crash state from disk.

Layout of a durable run directory (``wal_dir``)::

    meta.json                 config fingerprint + format version
    wal-00000000.log          records since the start (epoch 0)
    snapshot-00000001.json    checkpoint 1 (atomic rename, fsynced)
    wal-00000001.log          records since checkpoint 1
    ...

The correctness story: resume-after-crash is just another increment cut
of the incremental fold, so the ``resume-equals-uninterrupted``
metamorphic relation (``repro-er check``) and the crash-injection sweep
in ``tests/durability`` verify bit-identical match sets for crashes at
any seeded WAL offset, including torn mid-record writes.  See
``docs/durability.md`` for the record format, snapshot schema, recovery
procedure and fsync guarantees.
"""

from repro.durability.codec import state_digest
from repro.durability.recovery import RecoveredState, recover, resume_pipeline
from repro.durability.snapshot import (
    load_snapshot,
    snapshot_path,
    state_document,
    write_snapshot,
)
from repro.durability.wal import (
    CrashPoint,
    WalScan,
    WalWriter,
    scan_wal,
    segment_path,
)

__all__ = [
    "CrashPoint",
    "RecoveredState",
    "WalScan",
    "WalWriter",
    "load_snapshot",
    "recover",
    "resume_pipeline",
    "scan_wal",
    "segment_path",
    "snapshot_path",
    "state_digest",
    "state_document",
    "write_snapshot",
]
