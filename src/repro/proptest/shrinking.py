"""Failing-case minimization: the smallest stream + split that still fails.

A raw counterexample drawn by the runner is typically a 20-entity stream
with a handful of increments and several active knobs; most of it is
noise.  :func:`shrink_case` greedily minimizes an :class:`ERCase` against
the property's own failure predicate: delta-debugging-style chunk removal
over the entity stream, dropping increment cuts, flattening attributes,
and neutralizing config knobs — accepting a candidate only when the
property *still fails* on it.  The result is the minimal case printed in a
failure report (and the case a regression test should pin).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.classification.classifiers import ThresholdClassifier
from repro.core.config import StreamERConfig
from repro.types import EntityDescription

__all__ = ["ERCase", "shrink_case", "clip_cuts"]


def clip_cuts(cuts: Sequence[int], n: int) -> tuple[int, ...]:
    """Cuts re-validated for a stream of length ``n``: interior, sorted, unique."""
    return tuple(sorted({c for c in cuts if 0 < c < n}))


@dataclass(frozen=True)
class ERCase:
    """One self-contained test case: an entity stream plus the pipeline knobs.

    Everything a metamorphic relation needs to run the pipeline is here, so
    a case survives shrinking, pickling into a failure report, and being
    pasted into a regression test verbatim.  ``cuts`` are the interior
    split points of the increment partitioning (``()`` = one batch);
    ``salt`` seeds any *extra* randomness a relation wants (e.g. which
    permutation to compare against) without coupling it to case identity.
    """

    entities: tuple[EntityDescription, ...]
    alpha: int = 1000
    beta: float = 0.3
    threshold: float = 0.3
    clean_clean: bool = False
    block_cleaning: bool = True
    comparison_cleaning: bool = True
    cuts: tuple[int, ...] = ()
    salt: int = 0

    def config(self, interned: bool = False, **overrides: object) -> StreamERConfig:
        """The :class:`StreamERConfig` this case describes."""
        kwargs: dict[str, object] = dict(
            alpha=self.alpha,
            beta=self.beta,
            enable_block_cleaning=self.block_cleaning,
            enable_comparison_cleaning=self.comparison_cleaning,
            clean_clean=self.clean_clean,
            classifier=ThresholdClassifier(self.threshold),
        )
        kwargs.update(overrides)
        if interned:
            return StreamERConfig.interned(**kwargs)  # type: ignore[arg-type]
        return StreamERConfig(**kwargs)  # type: ignore[arg-type]

    def increments(self) -> list[list[EntityDescription]]:
        """The stream split at ``cuts`` (always covers every entity)."""
        bounds = [0, *clip_cuts(self.cuts, len(self.entities)), len(self.entities)]
        return [
            list(self.entities[lo:hi])
            for lo, hi in zip(bounds, bounds[1:])
            if hi > lo
        ]

    def describe(self) -> str:
        """A readable rendering for failure reports and regression tests."""
        lines = [
            f"ERCase: {len(self.entities)} entities, "
            f"alpha={self.alpha} beta={self.beta} threshold={self.threshold}",
            f"  clean_clean={self.clean_clean} "
            f"block_cleaning={self.block_cleaning} "
            f"comparison_cleaning={self.comparison_cleaning} "
            f"cuts={self.cuts} salt={self.salt}",
        ]
        for e in self.entities:
            lines.append(f"  {e.eid!r}: {dict(e.attributes)!r}")
        return "\n".join(lines)

    def complexity(self) -> tuple[int, int, int, int]:
        """Shrink ordering key — strictly decreases along a shrink chain."""
        return (
            len(self.entities),
            sum(len(e.attributes) for e in self.entities),
            len(self.cuts),
            int(self.block_cleaning) + int(self.comparison_cleaning),
        )


@dataclass
class _Budget:
    """Caps the number of predicate evaluations a shrink may spend."""

    remaining: int
    spent: int = field(default=0)

    def take(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        self.spent += 1
        return True


def _with_entities(case: ERCase, entities: Sequence[EntityDescription]) -> ERCase:
    entities = tuple(entities)
    return replace(case, entities=entities, cuts=clip_cuts(case.cuts, len(entities)))


def _shrink_entities(
    case: ERCase, fails: Callable[[ERCase], bool], budget: _Budget
) -> ERCase:
    """ddmin-style chunk removal: halves first, then ever smaller chunks."""
    chunk = max(1, len(case.entities) // 2)
    while chunk >= 1:
        index = 0
        progressed = False
        while index < len(case.entities):
            if not budget.take():
                return case
            candidate = _with_entities(
                case, case.entities[:index] + case.entities[index + chunk :]
            )
            if len(candidate.entities) < len(case.entities) and fails(candidate):
                case = candidate
                progressed = True
            else:
                index += chunk
        if chunk == 1 and not progressed:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if progressed else 0)
    return case


def _shrink_cuts(case: ERCase, fails: Callable[[ERCase], bool], budget: _Budget) -> ERCase:
    if case.cuts and budget.take():
        candidate = replace(case, cuts=())
        if fails(candidate):
            return candidate
    for cut in list(case.cuts):
        if not budget.take():
            return case
        candidate = replace(case, cuts=tuple(c for c in case.cuts if c != cut))
        if fails(candidate):
            case = candidate
    return case


def _shrink_attributes(
    case: ERCase, fails: Callable[[ERCase], bool], budget: _Budget
) -> ERCase:
    """Flatten descriptions: keep only each entity's first attribute."""
    for i, entity in enumerate(case.entities):
        if len(entity.attributes) <= 1:
            continue
        if not budget.take():
            return case
        slim = EntityDescription(
            eid=entity.eid, attributes=entity.attributes[:1], source=entity.source
        )
        candidate = _with_entities(
            case, case.entities[:i] + (slim,) + case.entities[i + 1 :]
        )
        if fails(candidate):
            case = candidate
    return case


def _shrink_knobs(case: ERCase, fails: Callable[[ERCase], bool], budget: _Budget) -> ERCase:
    """Neutralize config knobs one at a time (fewer active mechanisms)."""
    for candidate_fn in (
        lambda c: replace(c, block_cleaning=False),
        lambda c: replace(c, comparison_cleaning=False),
        lambda c: replace(c, alpha=1000),
        lambda c: replace(c, salt=0),
    ):
        candidate = candidate_fn(case)
        if candidate == case:
            continue
        if not budget.take():
            return case
        if fails(candidate):
            case = candidate
    return case


def shrink_case(
    case: ERCase,
    fails: Callable[[ERCase], bool],
    max_checks: int = 300,
) -> ERCase:
    """Greedily minimize ``case`` while ``fails`` keeps returning True.

    ``fails`` must be the property's failure predicate (True = still a
    counterexample) and must never raise — the runner wraps the property so
    an exception counts as a failure.  At most ``max_checks`` predicate
    evaluations are spent; the best case found so far is returned when the
    budget runs out, so shrinking is always safe to call.
    """
    budget = _Budget(remaining=max_checks)
    while True:
        before = case.complexity()
        case = _shrink_entities(case, fails, budget)
        case = _shrink_cuts(case, fails, budget)
        case = _shrink_attributes(case, fails, budget)
        case = _shrink_knobs(case, fails, budget)
        if case.complexity() >= before or budget.remaining <= 0:
            return case
