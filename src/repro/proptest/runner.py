"""The property runner: deterministic examples, shrinking, replay commands.

A :class:`Property` couples a generator with a checking function that
raises on violation.  :func:`run_property` draws ``examples`` cases, each
from its own ``random.Random(f"{seed}:{name}:{index}")`` — the per-example
stream depends only on the three values printed in a failure report, so a
CI failure replays bit-identically anywhere with the printed
:func:`replay_command`.  On failure the case is handed to
:func:`~repro.proptest.shrinking.shrink_case` (when it is an
:class:`~repro.proptest.shrinking.ERCase`) and the report carries both the
original and the minimal counterexample.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.proptest.generators import Gen
from repro.proptest.shrinking import ERCase, shrink_case

__all__ = [
    "CheckFailed",
    "Property",
    "Failure",
    "PropertyReport",
    "SuiteReport",
    "run_property",
    "replay_command",
]


class CheckFailed(AssertionError):
    """A property's check found a violation (vs. crashing incidentally)."""


@dataclass(frozen=True)
class Property:
    """A named property: draw a case with ``gen``, verify it with ``check``.

    ``check`` takes the generated case and raises (:class:`CheckFailed` for
    a clean violation, anything else for a crash — both count as failures)
    or returns ``None`` on success.
    """

    name: str
    gen: Gen
    check: Callable[[Any], None]

    def holds_on(self, case: Any) -> bool:
        """True when ``check`` passes on ``case`` (no exception escapes)."""
        try:
            self.check(case)
        except Exception:
            return False
        return True


@dataclass(frozen=True)
class Failure:
    """One falsified property: the raw case, the shrunk case, the errors."""

    property: str
    seed: int
    index: int
    error: str
    case: Any
    shrunk: Any | None = None
    shrunk_error: str | None = None

    def minimal(self) -> Any:
        """The smallest known counterexample (shrunk if available)."""
        return self.shrunk if self.shrunk is not None else self.case

    def describe(self) -> str:
        case = self.minimal()
        rendered = case.describe() if isinstance(case, ERCase) else repr(case)
        error = self.shrunk_error if self.shrunk_error is not None else self.error
        return (
            f"property {self.property!r} falsified "
            f"(seed={self.seed}, example #{self.index})\n"
            f"{error}\n"
            f"minimal counterexample:\n{rendered}"
        )


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of running one property for a full example budget."""

    name: str
    seed: int
    examples: int
    failure: Failure | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class SuiteReport:
    """Outcomes across a whole suite of properties, one seed."""

    seed: int
    reports: list[PropertyReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    def failures(self) -> list[Failure]:
        return [r.failure for r in self.reports if r.failure is not None]


def example_rng(seed: int, name: str, index: int) -> random.Random:
    """The rng for one example — a pure function of (seed, property, index)."""
    return random.Random(f"{seed}:{name}:{index}")


def replay_command(name: str, seed: int, examples: int) -> str:
    """The CLI line reproducing a failure of ``name`` bit-identically."""
    return f"repro-er check --seed {seed} --examples {examples} --property {name}"


def _error_line(exc: BaseException) -> str:
    if isinstance(exc, CheckFailed):
        return f"CheckFailed: {exc}"
    last = traceback.format_exception_only(type(exc), exc)[-1].strip()
    frames = traceback.extract_tb(exc.__traceback__)
    where = f" (at {frames[-1].filename}:{frames[-1].lineno})" if frames else ""
    return f"{last}{where}"


def run_property(
    prop: Property,
    seed: int,
    examples: int = 10,
    shrink_budget: int = 300,
) -> PropertyReport:
    """Run ``prop`` on ``examples`` seeded cases, shrinking the first failure.

    Stops at the first falsifying example: the report's :class:`Failure`
    carries the raw case, the shrunk minimal case (for :class:`ERCase`
    inputs), and both error messages.  ``shrink_budget`` caps how many
    times the check may be re-evaluated during shrinking.
    """
    for index in range(examples):
        case = prop.gen.sample(example_rng(seed, prop.name, index))
        try:
            prop.check(case)
        except Exception as exc:
            failure = Failure(
                property=prop.name,
                seed=seed,
                index=index,
                error=_error_line(exc),
                case=case,
            )
            if isinstance(case, ERCase) and shrink_budget > 0:
                shrunk = shrink_case(
                    case, lambda c: not prop.holds_on(c), max_checks=shrink_budget
                )
                shrunk_error = failure.error
                try:
                    prop.check(shrunk)
                except Exception as shrunk_exc:
                    shrunk_error = _error_line(shrunk_exc)
                failure = Failure(
                    property=prop.name,
                    seed=seed,
                    index=index,
                    error=failure.error,
                    case=case,
                    shrunk=shrunk,
                    shrunk_error=shrunk_error,
                )
            return PropertyReport(
                name=prop.name, seed=seed, examples=examples, failure=failure
            )
    return PropertyReport(name=prop.name, seed=seed, examples=examples)
