"""Composable seeded generators for property-based ER testing.

A :class:`Gen` wraps a function ``random.Random -> value``; combinators
(``map``, ``bind``, :func:`lists`, :func:`choice`, ...) compose small
generators into structured ones.  Everything is driven by the one
``random.Random`` instance the runner derives from ``(seed, property,
example index)``, so a generated case is fully determined by the seed
printed in a failure report.

The domain generators build the cases the metamorphic relations consume:
dirty and clean-clean entity streams whose duplicate descriptions are
derived with the *same* perturbation model the synthetic datasets use
(:mod:`repro.datasets.perturbations`), increment split points, and
:class:`~repro.proptest.shrinking.ERCase` bundles of stream + config.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence, TypeVar

from repro.datasets.generators import DatasetSpec, generate
from repro.datasets.perturbations import PerturbationProfile, perturb_record
from repro.proptest.shrinking import ERCase
from repro.types import EntityDescription

T = TypeVar("T")
U = TypeVar("U")

__all__ = [
    "Gen",
    "integers",
    "floats",
    "booleans",
    "choice",
    "lists",
    "dirty_streams",
    "clean_clean_streams",
    "paperlike_streams",
    "increment_cuts",
    "er_cases",
]


class Gen:
    """A seeded generator: a pure function of a ``random.Random``."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[random.Random], T]) -> None:
        self._fn = fn

    def sample(self, rng: random.Random) -> T:
        """Draw one value (advances the rng)."""
        return self._fn(rng)

    def map(self, f: Callable[[T], U]) -> "Gen":
        """A generator producing ``f`` of every drawn value."""
        return Gen(lambda rng: f(self._fn(rng)))

    def bind(self, f: Callable[[T], "Gen"]) -> "Gen":
        """Monadic composition: draw, then draw from ``f(value)``."""
        return Gen(lambda rng: f(self._fn(rng)).sample(rng))


def integers(lo: int, hi: int) -> Gen:
    """Uniform integer in ``[lo, hi]`` (inclusive)."""
    return Gen(lambda rng: rng.randint(lo, hi))


def floats(lo: float, hi: float) -> Gen:
    """Uniform float in ``[lo, hi)``."""
    return Gen(lambda rng: rng.uniform(lo, hi))


def booleans(p_true: float = 0.5) -> Gen:
    return Gen(lambda rng: rng.random() < p_true)


def choice(options: Sequence) -> Gen:
    """One of ``options``, uniformly."""
    items = list(options)
    return Gen(lambda rng: rng.choice(items))


def lists(element: Gen, min_size: int = 0, max_size: int = 8) -> Gen:
    def draw(rng: random.Random) -> list:
        n = rng.randint(min_size, max_size)
        return [element.sample(rng) for _ in range(n)]

    return Gen(draw)


# --------------------------------------------------------------------------
# Domain generators

#: A small shared vocabulary: frequent tokens produce the co-occurrence
#: blocks the relations exercise; "rareNN" tokens keep blocks from
#: collapsing into one giant component.
_COMMON_TOKENS = (
    "glass", "panel", "wood", "fibre", "roof", "window",
    "door", "steel", "lamp", "chair", "pavilion", "frame",
)
_ATTRIBUTES = ("title", "material", "part", "desc")


def _value(rng: random.Random, rare_pool: int) -> str:
    tokens = [rng.choice(_COMMON_TOKENS) for _ in range(rng.randint(1, 3))]
    if rng.random() < 0.5:
        tokens.append(f"rare{rng.randrange(rare_pool)}")
    return " ".join(tokens)


def _base_record(rng: random.Random, rare_pool: int) -> list[tuple[str, str]]:
    n_attrs = rng.randint(1, 3)
    return [
        (rng.choice(_ATTRIBUTES), _value(rng, rare_pool))
        for _ in range(n_attrs)
    ]


def dirty_streams(
    max_entities: int = 24,
    rare_pool: int = 40,
    perturbations: PerturbationProfile | None = None,
) -> Gen:
    """A dirty-ER stream: clusters of perturbed duplicate descriptions.

    Entity ids are dense ints in arrival order; duplicates are derived
    from a cluster's base record with the dataset perturbation model, so
    the streams carry the same phenomena (token drops, typos, renames)
    as the synthetic evaluation data.
    """
    profile = perturbations if perturbations is not None else PerturbationProfile()

    def draw(rng: random.Random) -> list[EntityDescription]:
        n = rng.randint(0, max_entities)
        entities: list[EntityDescription] = []
        eid = 0
        while eid < n:
            size = min(rng.randint(1, 3), n - eid)
            record = _base_record(rng, rare_pool)
            for member in range(size):
                attrs = (
                    record if member == 0 else perturb_record(record, profile, 0.3, rng)
                )
                entities.append(
                    EntityDescription(eid=eid, attributes=tuple(attrs), source=None)
                )
                eid += 1
        rng.shuffle(entities)
        return entities

    return Gen(draw)


def clean_clean_streams(
    max_entities: int = 24,
    rare_pool: int = 40,
    perturbations: PerturbationProfile | None = None,
) -> Gen:
    """A clean-clean stream: two interleaved sources, ``(source, i)`` ids."""
    profile = perturbations if perturbations is not None else PerturbationProfile()

    def draw(rng: random.Random) -> list[EntityDescription]:
        n = rng.randint(0, max_entities)
        entities: list[EntityDescription] = []
        next_local = {"x": 0, "y": 0}
        produced = 0
        while produced < n:
            record = _base_record(rng, rare_pool)
            members = [("x", 1)]
            if produced + 1 < n and rng.random() < 0.7:
                members.append(("y", 1))
            first = True
            for source, count in members:
                for _ in range(count):
                    attrs = (
                        record if first else perturb_record(record, profile, 0.3, rng)
                    )
                    first = False
                    eid = (source, next_local[source])
                    next_local[source] += 1
                    entities.append(
                        EntityDescription(eid=eid, attributes=tuple(attrs), source=source)
                    )
                    produced += 1
        rng.shuffle(entities)
        return entities

    return Gen(draw)


def paperlike_streams(max_scale: float = 0.12) -> Gen:
    """A stream drawn from the full synthetic dataset generator.

    Heavier than :func:`dirty_streams` but carries the Zipfian common-token
    head and topic structure of the paper's evaluation data (Table II), so
    relations also see oversized blocks worth pruning.
    """

    def draw(rng: random.Random) -> list[EntityDescription]:
        scale = rng.uniform(0.02, max_scale)
        spec = DatasetSpec(
            name="prop", kind="dirty", size=200, matches=120,
            avg_attributes=4.0, heterogeneity=0.3, vocab_rare=2000,
            seed=rng.randrange(1 << 30),
        ).scaled(scale)
        return list(generate(spec).entities)

    return Gen(draw)


def increment_cuts(n: int, max_cuts: int = 4) -> Gen:
    """Sorted interior split points partitioning a stream of length ``n``."""

    def draw(rng: random.Random) -> tuple[int, ...]:
        if n < 2:
            return ()
        k = rng.randint(0, min(max_cuts, n - 1))
        return tuple(sorted(rng.sample(range(1, n), k)))

    return Gen(draw)


def er_cases(
    stream: Gen | None = None,
    clean_clean: bool = False,
    alphas: Sequence[int] = (3, 5, 8, 1000),
    betas: Sequence[float] = (0.1, 0.3, 0.6),
    thresholds: Sequence[float] = (0.2, 0.35, 0.5),
) -> Gen:
    """A full :class:`~repro.proptest.shrinking.ERCase`: stream + knobs."""
    entity_gen = stream if stream is not None else (
        clean_clean_streams() if clean_clean else dirty_streams()
    )

    def draw(rng: random.Random) -> ERCase:
        entities = tuple(entity_gen.sample(rng))
        return ERCase(
            entities=entities,
            alpha=rng.choice(list(alphas)),
            beta=rng.choice(list(betas)),
            threshold=rng.choice(list(thresholds)),
            clean_clean=clean_clean,
            block_cleaning=rng.random() < 0.8,
            comparison_cleaning=rng.random() < 0.8,
            cuts=increment_cuts(len(entities)).sample(rng),
            salt=rng.randrange(1 << 30),
        )

    return Gen(draw)
