"""Seeded property-based testing for the ER pipeline, dependency-free.

The paper's functional model ``f_er = f_cl ∘ f_co ∘ ... ∘ f_dr`` implies
algebraic guarantees — incremental application over any increment
partitioning equals batch application, executors agree on the match set,
α/β pruning is monotone in the comparison counts — that example-based
tests can only spot-check.  This package provides the three pieces needed
to check them systematically:

* :mod:`repro.proptest.generators` — composable, seeded generators for
  entity streams, perturbated duplicates, increment splits and pipeline
  configurations (reusing :mod:`repro.datasets.perturbations`);
* :mod:`repro.proptest.runner` — a deterministic property runner with
  failure **shrinking** and one-line replay commands;
* :mod:`repro.proptest.relations` — the library of metamorphic relations
  from the paper, assembled into the oracle suite behind
  ``repro-er check``.

Everything is deterministic in a single integer seed: a failure printed in
CI replays bit-identically on a laptop via the printed command.  See
``docs/correctness.md``.
"""

from repro.proptest.generators import (
    Gen,
    booleans,
    choice,
    clean_clean_streams,
    dirty_streams,
    er_cases,
    floats,
    increment_cuts,
    integers,
    lists,
    paperlike_streams,
)
from repro.proptest.relations import (
    METAMORPHIC_RELATIONS,
    Relation,
    relation_names,
    run_suite,
    self_test_relation,
)
from repro.proptest.runner import (
    CheckFailed,
    Failure,
    Property,
    PropertyReport,
    SuiteReport,
    example_rng,
    replay_command,
    run_property,
)
from repro.proptest.shrinking import ERCase, clip_cuts, shrink_case

__all__ = [
    "Gen",
    "integers",
    "floats",
    "booleans",
    "choice",
    "lists",
    "dirty_streams",
    "clean_clean_streams",
    "paperlike_streams",
    "increment_cuts",
    "er_cases",
    "ERCase",
    "shrink_case",
    "clip_cuts",
    "Property",
    "PropertyReport",
    "SuiteReport",
    "Failure",
    "CheckFailed",
    "run_property",
    "replay_command",
    "example_rng",
    "Relation",
    "METAMORPHIC_RELATIONS",
    "relation_names",
    "run_suite",
    "self_test_relation",
]
