"""The metamorphic relation library: the paper's algebra as executable oracles.

Entity resolution has no cheap ground truth, but the functional model
``f_er = f_cl ∘ f_co ∘ ... ∘ f_dr`` implies *relations between runs* that
must hold for every input — metamorphic oracles:

``incremental-equals-batch``
    folding the stream increment by increment (any partitioning) yields
    the same final match set as one batch application — the paper's
    incremental-ER claim (§III);
``order-invariance-no-cleaning``
    with both cleaning mechanisms disabled the blocking graph is
    arrival-order independent, so the final match set is invariant under
    stream permutation (with cleaning *enabled* pruning verdicts depend on
    arrival history, which is exactly why the parallel framework needs its
    serialization point);
``alpha-monotone`` / ``beta-monotone``
    a more permissive block purge (larger α) can only generate more
    comparisons; a more aggressive ghost threshold (larger β) can only
    generate fewer (Algorithms 1–2);
``dirty-self-consistency`` / ``clean-clean-cross-source``
    structural soundness of the match set for each ER variant;
``executors-agree``
    SEQ, PP, MPP and the multiprocess executor produce identical match
    sets modulo dead letters (none are injected here, so: identical),
    each verified against the runtime invariants while it runs;
``partitioned-equals-chunked``
    block-partitioned multiprocess dispatch (workers own disjoint
    blocking-key ranges and rescore locally) produces the same match set
    and the same ``dispatched + prefiltered == cleaned`` accounting as
    the chunked shm path;
``interned-equals-string``
    the integer-interned comparison kernel is score-equivalent to the
    string token path;
``resume-equals-uninterrupted``
    a durable (WAL-backed) run killed at a seeded record — cleanly
    between records or mid-record — recovers and resumes to the exact
    match set of an uninterrupted run (resume-after-crash is just
    another increment cut; see ``docs/durability.md``);
``invariants-hold``
    an incremental sequential run passes every state/stage/run invariant
    in :mod:`repro.invariants`.

Every relation couples a case generator with a check that raises
:class:`~repro.proptest.runner.CheckFailed` on violation, so the runner
can shrink its counterexamples like any other property.  The suite behind
``repro-er check`` is :func:`run_suite`; :func:`self_test_relation` is an
intentionally false relation proving the harness *can* fail, shrink and
print a replay command.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from repro.core.pipeline import StreamERPipeline
from repro.invariants.checker import InvariantChecker
from repro.proptest.generators import Gen, er_cases
from repro.proptest.runner import (
    CheckFailed,
    Property,
    SuiteReport,
    run_property,
)
from repro.proptest.shrinking import ERCase

__all__ = [
    "Relation",
    "METAMORPHIC_RELATIONS",
    "relation_names",
    "run_suite",
    "self_test_relation",
]


@dataclass(frozen=True)
class Relation:
    """One metamorphic relation: a case generator plus a violation check.

    ``heavy`` marks relations that execute the case several times (or on
    several executors); :func:`run_suite` halves their example budget so
    the default suite stays quick.
    """

    name: str
    description: str
    gen: Gen
    check: Callable[[ERCase], None]
    heavy: bool = False

    def to_property(self) -> Property:
        return Property(name=self.name, gen=self.gen, check=self.check)


# --------------------------------------------------------------------------
# Shared plumbing


def _run_batch(
    case: ERCase,
    entities: Sequence | None = None,
    interned: bool = False,
    checker: InvariantChecker | None = None,
) -> StreamERPipeline:
    pipeline = StreamERPipeline(
        case.config(interned=interned), instrument=False, checker=checker
    )
    pipeline.process_many(list(entities if entities is not None else case.entities))
    return pipeline


def _match_pairs(case: ERCase, **kwargs) -> set[tuple]:
    return _run_batch(case, **kwargs).summary().match_pairs


def _fail_diff(what: str, left_name: str, left: set, right_name: str, right: set) -> None:
    only_left = sorted(map(repr, left - right))[:4]
    only_right = sorted(map(repr, right - left))[:4]
    raise CheckFailed(
        f"{what}: {left_name} found {len(left)} pairs, {right_name} {len(right)}; "
        f"only in {left_name}: {only_left}; only in {right_name}: {only_right}"
    )


def _generated(case: ERCase, **config_overrides) -> int:
    pipeline = StreamERPipeline(case.config(**config_overrides), instrument=False)
    pipeline.process_many(list(case.entities))
    return pipeline.cg.generated


# --------------------------------------------------------------------------
# The relations


def _check_incremental_equals_batch(case: ERCase) -> None:
    batch = _match_pairs(case)
    pipeline = StreamERPipeline(case.config(), instrument=False)
    for increment in case.increments():
        pipeline.process_many(increment)
    incremental = pipeline.summary().match_pairs
    if incremental != batch:
        _fail_diff(
            f"incremental fold over cuts {case.cuts} diverged from batch",
            "incremental", incremental, "batch", batch,
        )


def _check_order_invariance(case: ERCase) -> None:
    baseline = _match_pairs(case)
    shuffled = list(case.entities)
    random.Random(case.salt).shuffle(shuffled)
    permuted = _match_pairs(case, entities=shuffled)
    if permuted != baseline:
        _fail_diff(
            "match set changed under stream permutation with cleaning disabled",
            "permuted", permuted, "original", baseline,
        )


def _check_alpha_monotone(case: ERCase) -> None:
    # Ghosting is neutralized (tiny β ⇒ astronomically high ghost
    # threshold) so the only mechanism varying is the α purge.
    counts = [
        _generated(case, alpha=alpha, beta=0.001, enable_block_cleaning=True)
        for alpha in (3, 8, 1000)
    ]
    if not (counts[0] <= counts[1] <= counts[2]):
        raise CheckFailed(
            f"comparisons generated not monotone in alpha: "
            f"alpha 3/8/1000 -> {counts}"
        )


def _check_beta_monotone(case: ERCase) -> None:
    # α is neutralized (no block on these stream sizes ever reaches 1000)
    # so the only mechanism varying is the ghost threshold |b_min|/β.
    counts = [
        _generated(case, alpha=1000, beta=beta, enable_block_cleaning=True)
        for beta in (0.1, 0.3, 0.9)
    ]
    if not (counts[0] >= counts[1] >= counts[2]):
        raise CheckFailed(
            f"comparisons generated not antitone in beta: "
            f"beta 0.1/0.3/0.9 -> {counts}"
        )


def _check_dirty_self_consistency(case: ERCase) -> None:
    pipeline = _run_batch(case)
    pairs = pipeline.summary().match_pairs
    eids = {entity.eid for entity in case.entities}
    for a, b in pairs:
        if a == b:
            raise CheckFailed(f"self-match {a!r} in the final match set")
        if a not in eids or b not in eids:
            raise CheckFailed(f"match ({a!r}, {b!r}) references an unseen entity")
    stored = pipeline.backend.matches.pairs()
    if pairs != stored:
        _fail_diff(
            "result matches diverged from the backend match store",
            "result", pairs, "store", stored,
        )


def _check_clean_clean_cross_source(case: ERCase) -> None:
    pairs = _match_pairs(case)
    for a, b in pairs:
        if a[0] == b[0]:
            raise CheckFailed(
                f"clean-clean match ({a!r}, {b!r}) pairs two entities "
                f"of the same source {a[0]!r}"
            )


def _check_executors_agree(case: ERCase) -> None:
    # Imported lazily: the executors import the plan module, which imports
    # the invariants package — keeping proptest importable on its own.
    from repro.parallel.framework import ParallelERPipeline
    from repro.parallel.mp_framework import MultiprocessERPipeline

    entities = list(case.entities)
    checkers = {"SEQ": InvariantChecker(mode="record", state_every=8)}
    reference = _match_pairs(case, checker=checkers["SEQ"])

    runs: list[tuple[str, set, int]] = []
    for name, kwargs in (
        ("PP", dict(micro_batch_size=1)),
        ("MPP", dict(micro_batch_size=16, micro_batch_delay=0.001)),
    ):
        checkers[name] = InvariantChecker(mode="record")
        framework = ParallelERPipeline(
            case.config(), processes=8, checker=checkers[name], **kwargs
        )
        result = framework.run(entities, timeout=120)
        runs.append((name, result.match_pairs, result.items_failed))

    checkers["mp"] = InvariantChecker(mode="record")
    mp = MultiprocessERPipeline(
        case.config(), workers=2, chunk_size=64, checker=checkers["mp"]
    )
    mp_result = mp.run(entities)
    runs.append(("mp", mp_result.match_pairs, mp_result.items_failed))

    for name, pairs, failed in runs:
        if failed:
            raise CheckFailed(
                f"executor {name} dead-lettered {failed} item(s) with no "
                f"faults injected"
            )
        if pairs != reference:
            _fail_diff(
                f"executor {name} diverged from SEQ", name, pairs, "SEQ", reference
            )
    for name, checker in checkers.items():
        if checker.violations:
            raise CheckFailed(
                f"invariants violated under executor {name}: {checker.report()}"
            )


def _check_partitioned_equals_chunked(case: ERCase) -> None:
    # Lazy imports for the same reason as _check_executors_agree.
    from repro.core.backends.shm import SharedMemoryBackend
    from repro.parallel.mp_framework import MultiprocessERPipeline

    entities = list(case.entities)
    outcomes: dict[str, set] = {}
    checkers: dict[str, InvariantChecker] = {}
    for name, partitioned in (("chunked", False), ("partitioned", True)):
        checkers[name] = InvariantChecker(mode="record")
        backend = SharedMemoryBackend()
        try:
            pipeline = MultiprocessERPipeline(
                case.config(interned=True),
                workers=2,
                chunk_size=64,
                backend=backend,
                checker=checkers[name],
                partitioned=partitioned,
            )
            result = pipeline.run(entities)
            if partitioned and not pipeline.partitioned_dispatch:
                raise CheckFailed(
                    "partitioned dispatch failed to negotiate on a "
                    "shared-memory backend with a threshold classifier"
                )
            if result.items_failed:
                raise CheckFailed(
                    f"{name} dispatch dead-lettered {result.items_failed} "
                    f"item(s) with no faults injected"
                )
            accounted = pipeline.pairs_dispatched + pipeline.pairs_prefiltered
            if accounted != result.comparisons_after_cleaning:
                raise CheckFailed(
                    f"{name} dispatch accounting broke: dispatched "
                    f"{pipeline.pairs_dispatched} + prefiltered "
                    f"{pipeline.pairs_prefiltered} != cleaned "
                    f"{result.comparisons_after_cleaning}"
                )
            pipeline.close()
            outcomes[name] = result.match_pairs
        finally:
            backend.unlink()
    if outcomes["partitioned"] != outcomes["chunked"]:
        _fail_diff(
            "partitioned dispatch diverged from chunked",
            "partitioned",
            outcomes["partitioned"],
            "chunked",
            outcomes["chunked"],
        )
    for name, checker in checkers.items():
        if checker.violations:
            raise CheckFailed(
                f"invariants violated under {name} dispatch: {checker.report()}"
            )


def _check_interned_equals_string(case: ERCase) -> None:
    string_pairs = _match_pairs(case)
    interned_pairs = _match_pairs(case, interned=True)
    if interned_pairs != string_pairs:
        _fail_diff(
            "interned comparison kernel diverged from the string token path",
            "interned", interned_pairs, "string", string_pairs,
        )


def _check_invariants_hold(case: ERCase) -> None:
    checker = InvariantChecker(mode="record", state_every=4)
    pipeline = StreamERPipeline(case.config(), instrument=False, checker=checker)
    for increment in case.increments():
        pipeline.process_many(increment)
    checker.finalize(
        pipeline.summary(), expected_entities=pipeline.entities_processed
    )
    if checker.violations:
        raise CheckFailed(checker.report())


def _check_resume_equals_uninterrupted(case: ERCase) -> None:
    # Resume-after-crash is just another increment cut of the incremental
    # fold: kill a durable run at a seeded WAL record (clean or torn),
    # recover, re-feed the uncommitted suffix, and the final match set —
    # pairs *and* similarities — must equal an uninterrupted run's.
    import tempfile
    from pathlib import Path

    from repro.durability.wal import CrashPoint
    from repro.errors import SimulatedCrash

    entities = list(case.entities)
    reference = _run_batch(case)
    baseline = {
        (m.key(), m.similarity) for m in reference.backend.matches.matches()
    }
    with tempfile.TemporaryDirectory(prefix="repro-resume-") as root:
        probe = StreamERPipeline(
            case.config(),
            instrument=False,
            wal_dir=str(Path(root) / "probe"),
            checkpoint_every=5,
        )
        probe.process_many(entities)
        probe.close()
        total = probe.backend.wal_records_seen
        if not total:
            return  # nothing was ever logged; nothing to crash into
        rng = random.Random(f"{case.salt}:resume")
        scenarios = [
            (1, None),  # the very first record
            (rng.randint(1, total), None),  # a clean mid-run crash
            (rng.randint(1, total), rng.randint(1, 7)),  # a torn write
        ]
        for index, (at_record, torn_bytes) in enumerate(scenarios):
            wal_dir = str(Path(root) / f"crash-{index}")
            crashed = StreamERPipeline(
                case.config(),
                instrument=False,
                wal_dir=wal_dir,
                checkpoint_every=5,
                crash_point=CrashPoint(at_record=at_record, torn_bytes=torn_bytes),
            )
            try:
                crashed.process_many(entities)
            except SimulatedCrash:
                pass
            resumed = StreamERPipeline(
                case.config(),
                instrument=False,
                wal_dir=wal_dir,
                resume=True,
                checkpoint_every=5,
            )
            resumed.process_many(entities[resumed.entities_processed :])
            resumed.close()
            pairs = {
                (m.key(), m.similarity)
                for m in resumed.backend.matches.matches()
            }
            if pairs != baseline:
                _fail_diff(
                    f"crash at WAL record {at_record} "
                    f"(torn_bytes={torn_bytes}) did not resume bit-identical",
                    "resumed",
                    pairs,
                    "uninterrupted",
                    baseline,
                )


def _without_cleaning(case: ERCase) -> ERCase:
    return replace(case, block_cleaning=False, comparison_cleaning=False)


METAMORPHIC_RELATIONS: tuple[Relation, ...] = (
    Relation(
        name="incremental-equals-batch",
        description="Folding any increment partitioning equals one batch run.",
        gen=er_cases(),
        check=_check_incremental_equals_batch,
    ),
    Relation(
        name="order-invariance-no-cleaning",
        description=(
            "With block and comparison cleaning disabled, the match set is "
            "invariant under stream permutation."
        ),
        gen=er_cases().map(_without_cleaning),
        check=_check_order_invariance,
    ),
    Relation(
        name="alpha-monotone",
        description="Comparisons generated are non-decreasing in alpha.",
        gen=er_cases(),
        check=_check_alpha_monotone,
        heavy=True,
    ),
    Relation(
        name="beta-monotone",
        description="Comparisons generated are non-increasing in beta.",
        gen=er_cases(),
        check=_check_beta_monotone,
        heavy=True,
    ),
    Relation(
        name="dirty-self-consistency",
        description=(
            "Dirty-ER matches are irreflexive, reference only seen entities "
            "and agree with the backend match store."
        ),
        gen=er_cases(),
        check=_check_dirty_self_consistency,
    ),
    Relation(
        name="clean-clean-cross-source",
        description="Clean-clean matches always pair entities across sources.",
        gen=er_cases(clean_clean=True),
        check=_check_clean_clean_cross_source,
    ),
    Relation(
        name="executors-agree",
        description=(
            "SEQ, PP, MPP and the multiprocess executor produce the same "
            "match set (no dead letters), with runtime invariants checked "
            "on every executor."
        ),
        gen=er_cases(),
        check=_check_executors_agree,
        heavy=True,
    ),
    Relation(
        name="partitioned-equals-chunked",
        description=(
            "Block-partitioned multiprocess dispatch produces the same "
            "match set and pair accounting as chunked shm dispatch."
        ),
        gen=er_cases(),
        check=_check_partitioned_equals_chunked,
        heavy=True,
    ),
    Relation(
        name="interned-equals-string",
        description="The interned comparison kernel matches the string path.",
        gen=er_cases(),
        check=_check_interned_equals_string,
    ),
    Relation(
        name="resume-equals-uninterrupted",
        description=(
            "A durable run killed at a seeded WAL record (clean or torn) "
            "resumes to the exact match set of an uninterrupted run."
        ),
        gen=er_cases(),
        check=_check_resume_equals_uninterrupted,
        heavy=True,
    ),
    Relation(
        name="invariants-hold",
        description=(
            "An incremental sequential run passes every registered "
            "state/stage/run invariant."
        ),
        gen=er_cases(),
        check=_check_invariants_hold,
    ),
)


def relation_names() -> tuple[str, ...]:
    return tuple(relation.name for relation in METAMORPHIC_RELATIONS)


def _check_self_test(case: ERCase) -> None:
    pipeline = _run_batch(case)
    assignments = pipeline.backend.blocks.total_assignments()
    if assignments:
        raise CheckFailed(
            f"(intentional) claimed no stream ever builds a block, but "
            f"{assignments} block assignment(s) exist"
        )


def self_test_relation() -> Relation:
    """An intentionally false relation for demonstrating failure handling.

    Claims no stream ever produces a block assignment — falsified by any
    entity with one token, so the harness's failure path (non-zero exit,
    shrinking down to a single one-attribute entity, replay command) can
    be demonstrated end to end without breaking real code.
    """
    return Relation(
        name="self-test-failure",
        description="Intentionally false claim used to prove failures surface.",
        gen=er_cases(),
        check=_check_self_test,
    )


def run_suite(
    seed: int,
    examples: int = 6,
    names: Iterable[str] | None = None,
    extra_relations: Sequence[Relation] = (),
    shrink_budget: int = 200,
) -> SuiteReport:
    """Run the metamorphic + invariant oracle suite for one seed.

    ``names`` restricts the run to a subset (unknown names raise
    ``KeyError`` so a typo cannot silently pass CI); ``extra_relations``
    appends ad-hoc relations (the CLI's self-test uses this).  Heavy
    relations get half the example budget.  Failures shrink within
    ``shrink_budget`` predicate evaluations each.
    """
    relations = list(METAMORPHIC_RELATIONS) + list(extra_relations)
    if names is not None:
        by_name = {relation.name: relation for relation in relations}
        missing = [name for name in names if name not in by_name]
        if missing:
            raise KeyError(
                f"unknown relation(s) {missing}; known: {sorted(by_name)}"
            )
        relations = [by_name[name] for name in names]
    report = SuiteReport(seed=seed)
    for relation in relations:
        budget = max(1, examples // 2) if relation.heavy else examples
        report.reports.append(
            run_property(
                relation.to_property(),
                seed=seed,
                examples=budget,
                shrink_budget=shrink_budget,
            )
        )
    return report
