"""Replay of timestamped entity streams.

Real feeds carry event timestamps.  :func:`replay` re-emits a recorded,
timestamped stream with its original inter-arrival gaps (optionally
compressed by a speed factor), so latency experiments can be driven by
realistic arrival patterns instead of a constant rate.  For the simulator,
:func:`arrival_times_from_events` converts the same recording into the
arrival-schedule form `PipelineSimulator.run` expects.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.types import EntityDescription

TimedEntity = tuple[float, EntityDescription]


def replay(
    events: Iterable[TimedEntity],
    speed: float = 1.0,
) -> Iterator[EntityDescription]:
    """Yield entities with their recorded gaps, ``speed``× faster.

    Events must be ordered by timestamp; out-of-order input raises, since
    silently re-ordering would falsify the stream the caller recorded.
    """
    if speed <= 0:
        raise ConfigurationError("speed must be positive")
    start_wall = time.perf_counter()
    first_ts: float | None = None
    last_ts: float | None = None
    for timestamp, entity in events:
        if last_ts is not None and timestamp < last_ts:
            raise ConfigurationError(
                f"events out of order: {timestamp} after {last_ts}"
            )
        last_ts = timestamp
        if first_ts is None:
            first_ts = timestamp
        target = start_wall + (timestamp - first_ts) / speed
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        yield entity


def arrival_times_from_events(
    events: Sequence[TimedEntity], speed: float = 1.0
) -> list[float]:
    """Relative arrival schedule of a recorded stream (simulator input)."""
    if speed <= 0:
        raise ConfigurationError("speed must be positive")
    if not events:
        return []
    first = events[0][0]
    out = []
    last = None
    for timestamp, _ in events:
        if last is not None and timestamp < last:
            raise ConfigurationError(
                f"events out of order: {timestamp} after {last}"
            )
        last = timestamp
        out.append((timestamp - first) / speed)
    return out
