"""Streaming evaluation harness: sources and latency/throughput runners."""

from repro.streaming.runner import (
    IncrementReport,
    LiveStreamRunner,
    MultiprocessStreamRunner,
    SimulatedStreamRunner,
    StreamRunReport,
)
from repro.streaming.source import RateLimitedSource, arrival_schedule
from repro.streaming.updates import UpdateAwareERPipeline
from repro.streaming.windowing import EvictionStats, SlidingWindowERPipeline

__all__ = [
    "UpdateAwareERPipeline",
    "RateLimitedSource",
    "arrival_schedule",
    "LiveStreamRunner",
    "MultiprocessStreamRunner",
    "IncrementReport",
    "SimulatedStreamRunner",
    "StreamRunReport",
    "SlidingWindowERPipeline",
    "EvictionStats",
]
