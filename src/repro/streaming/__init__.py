"""Streaming evaluation harness: sources and latency/throughput runners."""

from repro.streaming.runner import (
    LiveStreamRunner,
    SimulatedStreamRunner,
    StreamRunReport,
)
from repro.streaming.source import RateLimitedSource, arrival_schedule
from repro.streaming.updates import UpdateAwareERPipeline
from repro.streaming.windowing import EvictionStats, SlidingWindowERPipeline

__all__ = [
    "UpdateAwareERPipeline",
    "RateLimitedSource",
    "arrival_schedule",
    "LiveStreamRunner",
    "SimulatedStreamRunner",
    "StreamRunReport",
    "SlidingWindowERPipeline",
    "EvictionStats",
]
