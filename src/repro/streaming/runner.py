"""Streaming evaluation harness (§V-D).

Measures per-entity latency and output throughput of the framework under
a rate-controlled source.  Three drivers:

* :class:`LiveStreamRunner` — real wall-clock run of the thread framework
  behind a :class:`~repro.streaming.source.RateLimitedSource`; suitable for
  modest rates on a real box.
* :class:`MultiprocessStreamRunner` — drives *one* persistent
  :class:`~repro.parallel.mp_framework.MultiprocessERPipeline` across a
  sequence of increments (the dynamic-data scenario): the worker pool and
  the shared-memory token columns outlive every increment, so per-increment
  cost is pure scoring, not fork + re-serialization.
* :class:`SimulatedStreamRunner` — calibrates a
  :class:`~repro.parallel.simulator.ServiceModel` from an instrumented
  sequential run over sample data, then drives the discrete-event
  simulator at arbitrary source rates (the paper's 5 000–100 000
  descriptions/s).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.config import StreamERConfig
from repro.core.plan import PipelinePlan
from repro.evaluation.metrics import LatencySummary, throughput_series
from repro.observability.export import write_json_snapshot
from repro.observability.registry import MetricsRegistry
from repro.parallel.allocation import allocate_processes
from repro.parallel.framework import ParallelERPipeline
from repro.parallel.simulator import (
    PipelineSimulator,
    ServiceModel,
    SimulatorConfig,
)
from repro.streaming.source import RateLimitedSource, arrival_schedule
from repro.types import EntityDescription


@dataclass
class StreamRunReport:
    """Latency and throughput measurements of one streaming run."""

    source_rate: float
    entities: int
    latency: LatencySummary
    latencies: list[float] = field(default_factory=list)
    throughput: list[tuple[float, float]] = field(default_factory=list)
    completions: list[float] = field(default_factory=list)

    @property
    def stable_throughput(self) -> float:
        """Steady-state output rate, robust to warm-up and drain phases.

        Computed over the middle half of the completion timestamps (between
        the 25th and 75th percentile), which excludes both the initial
        buffer-filling burst and the partial final window.  Falls back to
        averaging the second half of the windowed series when raw
        completion times are unavailable (live runs).
        """
        if len(self.completions) >= 8:
            data = sorted(self.completions)
            n = len(data)
            lo_index, hi_index = n // 4, (3 * n) // 4
            span = data[hi_index] - data[lo_index]
            if span > 0.0:
                return (hi_index - lo_index) / span
            # A zero interquartile span (batch completions, coarse clocks:
            # many identical timestamps) is a degenerate sample, not a
            # zero-throughput run — fall through to the windowed series.
        if not self.throughput:
            return 0.0
        half = self.throughput[len(self.throughput) // 2 :]
        # The final window is usually partial; ignore it when possible.
        if len(half) > 1:
            half = half[:-1]
        return sum(v for _, v in half) / len(half)


class LiveStreamRunner:
    """Drive the thread framework from a real rate-limited source.

    With a ``registry``, each run's pipeline emits the shared metric
    vocabulary; ``metrics_path`` additionally writes a JSON snapshot of
    the registry when the run finishes (see
    :func:`repro.observability.export.write_json_snapshot`).

    With ``wal_dir``, the run's state lives in a
    :class:`~repro.core.backends.DurableBackend`: every mutation is
    write-ahead logged and checkpointed every ``checkpoint_every``
    committed entities.  The thread framework interleaves entity
    mutations before their commit records, so replay-to-last-commit is
    best-effort here (exact for the sequential executor); see
    ``docs/durability.md``.
    """

    def __init__(
        self,
        config: StreamERConfig,
        processes: int = 8,
        micro_batch_size: int = 1,
        stage_seconds: dict[str, float] | None = None,
        registry: MetricsRegistry | None = None,
        metrics_path: str | None = None,
        wal_dir: str | None = None,
        checkpoint_every: int = 0,
        fsync: str = "commit",
    ) -> None:
        self.config = config
        self.plan = PipelinePlan.from_config(config)
        self.processes = processes
        self.micro_batch_size = micro_batch_size
        self.stage_seconds = stage_seconds
        self.registry = registry
        self.metrics_path = metrics_path
        self.wal_dir = wal_dir
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync

    def _backend(self):
        if self.wal_dir is None:
            return None
        from repro.core.backends import (
            DurabilityConfig,
            DurableBackend,
            InMemoryBackend,
            config_fingerprint,
        )

        return DurableBackend(
            InMemoryBackend(),
            DurabilityConfig(
                wal_dir=self.wal_dir,
                checkpoint_every=self.checkpoint_every,
                fsync=self.fsync,
            ),
            registry=self.registry,
            fingerprint=config_fingerprint(self.config),
        )

    def run(
        self,
        entities: Iterable[EntityDescription],
        rate: float,
        window: float = 1.0,
    ) -> StreamRunReport:
        backend = self._backend()
        pipeline = ParallelERPipeline(
            plan=self.plan,
            processes=self.processes,
            stage_seconds=self.stage_seconds,
            micro_batch_size=self.micro_batch_size,
            registry=self.registry,
            backend=backend,
        )
        result = pipeline.run(RateLimitedSource(entities, rate))
        if backend is not None:
            backend.close()
        if self.registry is not None and self.metrics_path is not None:
            write_json_snapshot(self.registry, self.metrics_path)
        # Completion timestamps are recoverable from elapsed + latencies
        # only approximately; for live runs report latency stats and the
        # mean output rate.
        mean_rate = (
            result.entities_processed / result.elapsed_seconds
            if result.elapsed_seconds > 0
            else 0.0
        )
        return StreamRunReport(
            source_rate=rate,
            entities=result.entities_processed,
            latency=LatencySummary.from_samples(result.latencies),
            latencies=result.latencies,
            throughput=[(result.elapsed_seconds, mean_rate)],
        )


@dataclass
class IncrementReport:
    """One increment's outcome under :class:`MultiprocessStreamRunner`."""

    entities: int
    matches_found: int
    elapsed_seconds: float
    pool_reused: bool


class MultiprocessStreamRunner:
    """Incremental multiprocess ER with state and workers kept warm.

    The dynamic-data loop the paper targets: increments arrive over time
    and each must be resolved against *all* state accumulated so far.  The
    runner owns one :class:`~repro.core.backends.shm.SharedMemoryBackend`
    (so token columns persist and the ``"shm"`` dispatch mode is
    negotiated) and one persistent
    :class:`~repro.parallel.mp_framework.MultiprocessERPipeline` — the
    worker pool spawns on the first increment and is reused by every
    later one.  Use as a context manager (or call :meth:`close`) to
    release the pool and unlink the shared segments.

    With ``backend=None`` a fresh shared-memory backend is created and
    owned (closed + unlinked) by the runner; pass an explicit backend —
    e.g. ``DurableBackend(SharedMemoryBackend(), ...)`` for a durable
    incremental run — to manage its lifecycle yourself.

    ``partitioned="auto"`` (default) additionally negotiates
    block-partitioned dispatch when the backend and classifier allow it:
    workers then own disjoint blocking-key ranges and run candidate
    generation + rescoring locally (see
    :mod:`repro.parallel.mp_framework`); pass ``False`` to force the
    chunked path or ``True`` to fail loudly when unavailable.
    """

    def __init__(
        self,
        config: StreamERConfig,
        workers: int = 2,
        chunk_size: int = 256,
        backend=None,
        registry: MetricsRegistry | None = None,
        metrics_path: str | None = None,
        partitioned: bool | str = "auto",
    ) -> None:
        from repro.core.backends.shm import SharedMemoryBackend
        from repro.parallel.mp_framework import MultiprocessERPipeline

        self.config = config
        self._owns_backend = backend is None
        self.backend = backend if backend is not None else SharedMemoryBackend()
        self.registry = registry
        self.metrics_path = metrics_path
        self.pipeline = MultiprocessERPipeline(
            config,
            workers=workers,
            chunk_size=chunk_size,
            backend=self.backend,
            registry=registry,
            persistent_pool=True,
            partitioned=partitioned,
        )
        self.increments: list[IncrementReport] = []
        self._closed = False

    @property
    def partitioned_dispatch(self) -> bool:
        """Whether block-partitioned dispatch was negotiated (see
        :func:`~repro.parallel.mp_framework.negotiate_partitioned_dispatch`)."""
        return self.pipeline.partitioned_dispatch

    def process_increment(
        self, entities: Iterable[EntityDescription]
    ) -> IncrementReport:
        """Resolve one increment against all accumulated state."""
        reused_before = self.pipeline.pool_reuses
        start = time.perf_counter()
        result = self.pipeline.run(entities)
        report = IncrementReport(
            entities=result.entities_processed,
            matches_found=len(result.matches),
            elapsed_seconds=time.perf_counter() - start,
            pool_reused=self.pipeline.pool_reuses > reused_before,
        )
        self.increments.append(report)
        return report

    def match_pairs(self) -> set:
        """All matches in the accumulated state, across every increment."""
        return self.backend.matches.pairs()

    def close(self) -> None:
        """Release the worker pool; unlink the backend if we created it."""
        if self._closed:
            return
        self._closed = True
        self.pipeline.close()
        if self.registry is not None and self.metrics_path is not None:
            write_json_snapshot(self.registry, self.metrics_path)
        if self._owns_backend:
            self.backend.unlink()

    def __enter__(self) -> "MultiprocessStreamRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SimulatedStreamRunner:
    """Calibrate from real measurements, then simulate high-rate streams."""

    def __init__(
        self,
        service: ServiceModel,
        processes: int = 25,
        config: SimulatorConfig | None = None,
        registry: MetricsRegistry | None = None,
        metrics_path: str | None = None,
    ) -> None:
        self.service = service
        self.allocation = allocate_processes(service.mean_seconds, processes)
        self.simulator = PipelineSimulator(
            self.allocation, service, config, registry=registry
        )
        self.registry = registry
        self.metrics_path = metrics_path

    @classmethod
    def calibrated(
        cls,
        sample_entities: Sequence[EntityDescription],
        config: StreamERConfig,
        processes: int = 25,
        simulator_config: SimulatorConfig | None = None,
        cv: float = 1.0,
    ) -> "SimulatedStreamRunner":
        """Measure per-stage service times on real data, then build a runner.

        Runs the instrumented sequential pipeline over ``sample_entities``
        and converts per-stage totals into per-entity means (see
        :func:`repro.parallel.calibrate_service_model`).
        """
        from repro.parallel.calibration import (
            calibrate_service_model,
            default_simulator_config,
        )

        service = calibrate_service_model(list(sample_entities), config, cv=cv)
        if simulator_config is None:
            simulator_config = default_simulator_config(service)
        return cls(service, processes=processes, config=simulator_config)

    def run(self, n_items: int, rate: float, window: float = 1.0) -> StreamRunReport:
        """Simulate ``n_items`` arriving at ``rate`` descriptions/second."""
        result = self.simulator.run(arrival_schedule(n_items, rate))
        if self.registry is not None and self.metrics_path is not None:
            write_json_snapshot(self.registry, self.metrics_path)
        return StreamRunReport(
            source_rate=rate,
            entities=len(result.completion_times),
            latency=LatencySummary.from_samples(result.latencies),
            latencies=result.latencies,
            throughput=throughput_series(result.completion_times, window=window),
            completions=list(result.completion_times),
        )
