"""Streaming evaluation harness (§V-D).

Measures per-entity latency and output throughput of the framework under
a rate-controlled source.  Two drivers:

* :class:`LiveStreamRunner` — real wall-clock run of the thread framework
  behind a :class:`~repro.streaming.source.RateLimitedSource`; suitable for
  modest rates on a real box.
* :class:`SimulatedStreamRunner` — calibrates a
  :class:`~repro.parallel.simulator.ServiceModel` from an instrumented
  sequential run over sample data, then drives the discrete-event
  simulator at arbitrary source rates (the paper's 5 000–100 000
  descriptions/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.config import StreamERConfig
from repro.core.plan import PipelinePlan
from repro.evaluation.metrics import LatencySummary, throughput_series
from repro.observability.export import write_json_snapshot
from repro.observability.registry import MetricsRegistry
from repro.parallel.allocation import allocate_processes
from repro.parallel.framework import ParallelERPipeline
from repro.parallel.simulator import (
    PipelineSimulator,
    ServiceModel,
    SimulatorConfig,
)
from repro.streaming.source import RateLimitedSource, arrival_schedule
from repro.types import EntityDescription


@dataclass
class StreamRunReport:
    """Latency and throughput measurements of one streaming run."""

    source_rate: float
    entities: int
    latency: LatencySummary
    latencies: list[float] = field(default_factory=list)
    throughput: list[tuple[float, float]] = field(default_factory=list)
    completions: list[float] = field(default_factory=list)

    @property
    def stable_throughput(self) -> float:
        """Steady-state output rate, robust to warm-up and drain phases.

        Computed over the middle half of the completion timestamps (between
        the 25th and 75th percentile), which excludes both the initial
        buffer-filling burst and the partial final window.  Falls back to
        averaging the second half of the windowed series when raw
        completion times are unavailable (live runs).
        """
        if len(self.completions) >= 8:
            data = sorted(self.completions)
            n = len(data)
            lo_index, hi_index = n // 4, (3 * n) // 4
            span = data[hi_index] - data[lo_index]
            if span > 0.0:
                return (hi_index - lo_index) / span
            # A zero interquartile span (batch completions, coarse clocks:
            # many identical timestamps) is a degenerate sample, not a
            # zero-throughput run — fall through to the windowed series.
        if not self.throughput:
            return 0.0
        half = self.throughput[len(self.throughput) // 2 :]
        # The final window is usually partial; ignore it when possible.
        if len(half) > 1:
            half = half[:-1]
        return sum(v for _, v in half) / len(half)


class LiveStreamRunner:
    """Drive the thread framework from a real rate-limited source.

    With a ``registry``, each run's pipeline emits the shared metric
    vocabulary; ``metrics_path`` additionally writes a JSON snapshot of
    the registry when the run finishes (see
    :func:`repro.observability.export.write_json_snapshot`).

    With ``wal_dir``, the run's state lives in a
    :class:`~repro.core.backends.DurableBackend`: every mutation is
    write-ahead logged and checkpointed every ``checkpoint_every``
    committed entities.  The thread framework interleaves entity
    mutations before their commit records, so replay-to-last-commit is
    best-effort here (exact for the sequential executor); see
    ``docs/durability.md``.
    """

    def __init__(
        self,
        config: StreamERConfig,
        processes: int = 8,
        micro_batch_size: int = 1,
        stage_seconds: dict[str, float] | None = None,
        registry: MetricsRegistry | None = None,
        metrics_path: str | None = None,
        wal_dir: str | None = None,
        checkpoint_every: int = 0,
        fsync: str = "commit",
    ) -> None:
        self.config = config
        self.plan = PipelinePlan.from_config(config)
        self.processes = processes
        self.micro_batch_size = micro_batch_size
        self.stage_seconds = stage_seconds
        self.registry = registry
        self.metrics_path = metrics_path
        self.wal_dir = wal_dir
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync

    def _backend(self):
        if self.wal_dir is None:
            return None
        from repro.core.backends import (
            DurabilityConfig,
            DurableBackend,
            InMemoryBackend,
            config_fingerprint,
        )

        return DurableBackend(
            InMemoryBackend(),
            DurabilityConfig(
                wal_dir=self.wal_dir,
                checkpoint_every=self.checkpoint_every,
                fsync=self.fsync,
            ),
            registry=self.registry,
            fingerprint=config_fingerprint(self.config),
        )

    def run(
        self,
        entities: Iterable[EntityDescription],
        rate: float,
        window: float = 1.0,
    ) -> StreamRunReport:
        backend = self._backend()
        pipeline = ParallelERPipeline(
            plan=self.plan,
            processes=self.processes,
            stage_seconds=self.stage_seconds,
            micro_batch_size=self.micro_batch_size,
            registry=self.registry,
            backend=backend,
        )
        result = pipeline.run(RateLimitedSource(entities, rate))
        if backend is not None:
            backend.close()
        if self.registry is not None and self.metrics_path is not None:
            write_json_snapshot(self.registry, self.metrics_path)
        # Completion timestamps are recoverable from elapsed + latencies
        # only approximately; for live runs report latency stats and the
        # mean output rate.
        mean_rate = (
            result.entities_processed / result.elapsed_seconds
            if result.elapsed_seconds > 0
            else 0.0
        )
        return StreamRunReport(
            source_rate=rate,
            entities=result.entities_processed,
            latency=LatencySummary.from_samples(result.latencies),
            latencies=result.latencies,
            throughput=[(result.elapsed_seconds, mean_rate)],
        )


class SimulatedStreamRunner:
    """Calibrate from real measurements, then simulate high-rate streams."""

    def __init__(
        self,
        service: ServiceModel,
        processes: int = 25,
        config: SimulatorConfig | None = None,
        registry: MetricsRegistry | None = None,
        metrics_path: str | None = None,
    ) -> None:
        self.service = service
        self.allocation = allocate_processes(service.mean_seconds, processes)
        self.simulator = PipelineSimulator(
            self.allocation, service, config, registry=registry
        )
        self.registry = registry
        self.metrics_path = metrics_path

    @classmethod
    def calibrated(
        cls,
        sample_entities: Sequence[EntityDescription],
        config: StreamERConfig,
        processes: int = 25,
        simulator_config: SimulatorConfig | None = None,
        cv: float = 1.0,
    ) -> "SimulatedStreamRunner":
        """Measure per-stage service times on real data, then build a runner.

        Runs the instrumented sequential pipeline over ``sample_entities``
        and converts per-stage totals into per-entity means (see
        :func:`repro.parallel.calibrate_service_model`).
        """
        from repro.parallel.calibration import (
            calibrate_service_model,
            default_simulator_config,
        )

        service = calibrate_service_model(list(sample_entities), config, cv=cv)
        if simulator_config is None:
            simulator_config = default_simulator_config(service)
        return cls(service, processes=processes, config=simulator_config)

    def run(self, n_items: int, rate: float, window: float = 1.0) -> StreamRunReport:
        """Simulate ``n_items`` arriving at ``rate`` descriptions/second."""
        result = self.simulator.run(arrival_schedule(n_items, rate))
        if self.registry is not None and self.metrics_path is not None:
            write_json_snapshot(self.registry, self.metrics_path)
        return StreamRunReport(
            source_rate=rate,
            entities=len(result.completion_times),
            latency=LatencySummary.from_samples(result.latencies),
            latencies=result.latencies,
            throughput=throughput_series(result.completion_times, window=window),
            completions=list(result.completion_times),
        )
