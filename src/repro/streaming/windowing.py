"""Sliding-window state for truly unbounded streams.

The paper's state σ = ⟨M, B⟩ grows monotonically: every profile stays in
the block collection and the profile map forever.  On an unbounded stream
this is eventually fatal.  This extension bounds the state to the last
``window`` entity descriptions: a new entity can only match stream
elements at distance < ``window``, and everything older is evicted from
the block collection and the profile map (the match set M, being the
*output*, is not truncated).

Eviction is exact, not lazy: an insertion-order queue plus a reverse index
(entity → its block keys) make removal O(Σ|b_k|) per evicted entity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.config import StreamERConfig
from repro.core.pipeline import StreamERPipeline
from repro.errors import ConfigurationError
from repro.types import EntityDescription, EntityId, Match


@dataclass
class EvictionStats:
    """What the window has expired so far."""

    evicted_entities: int = 0
    removed_assignments: int = 0


class SlidingWindowERPipeline:
    """A stream pipeline whose state covers only the last ``window`` entities.

    Wraps :class:`~repro.core.pipeline.StreamERPipeline`; processing and
    match semantics within the window are identical to the unbounded
    pipeline's.
    """

    def __init__(
        self,
        config: StreamERConfig | None = None,
        window: int = 100_000,
        instrument: bool = False,
    ) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.window = window
        self.pipeline = StreamERPipeline(config, instrument=instrument)
        self.stats = EvictionStats()
        self._order: deque[EntityId] = deque()
        self._keys_of: dict[EntityId, frozenset[str]] = {}

    @property
    def current_window(self) -> list[EntityId]:
        """Identifiers currently inside the window, oldest first."""
        return list(self._order)

    def _retire(self, eid: EntityId) -> None:
        # discard() keeps the collection's O(1) size counters in sync and
        # drops blocks that become empty; mutating block lists in place
        # would silently corrupt them.
        blocks = self.pipeline.bb.blocks
        for key in self._keys_of.pop(eid, frozenset()):
            if blocks.discard(key, eid):
                self.stats.removed_assignments += 1
        # Profile-map entry: drop so memory stays bounded.
        self.pipeline.lm.profiles.remove(eid)

    def _evict(self, eid: EntityId) -> None:
        self._retire(eid)
        self.stats.evicted_entities += 1

    def process(self, entity: EntityDescription) -> list[Match]:
        """Process one entity, then expire anything beyond the window."""
        if entity.eid in self._keys_of:
            # Re-arrival while still in the window: retire the old version
            # first (stale block memberships and the old profile), and give
            # the identifier a fresh window slot.  Leaving the old order
            # entry in place would later evict the *live* entity's profile
            # and blocks while its second slot still references them.
            self._retire(entity.eid)
            self._order.remove(entity.eid)
        matches = self.pipeline.process(entity)
        profile = self.pipeline.lm.profiles.get(entity.eid)
        # Record which blocks the entity actually joined (blacklisted or
        # pruned keys never made it into the collection).
        if profile is not None:
            joined = frozenset(
                key for key in profile.tokens
                if entity.eid in self.pipeline.bb.blocks.block(key)
            )
            self._keys_of[entity.eid] = joined
        self._order.append(entity.eid)
        while len(self._order) > self.window:
            self._evict(self._order.popleft())
        return matches

    def process_many(self, entities) -> list[Match]:
        """Process a sequence; returns all matches it produced."""
        out: list[Match] = []
        for entity in entities:
            out.extend(self.process(entity))
        return out
