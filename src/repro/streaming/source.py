"""Stream sources: rate-controlled emission of entity descriptions.

Two flavours: :class:`RateLimitedSource` paces a real wall-clock stream
(for driving the thread framework live), while :func:`arrival_schedule`
produces the arrival timestamps consumed by the discrete-event simulator
(for source rates far beyond what one interpreter can emit).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.types import EntityDescription


@dataclass(frozen=True)
class RateLimitedSource:
    """Yield entities at (approximately) ``rate`` descriptions/second.

    Pacing uses absolute deadlines, so short hiccups are caught up rather
    than accumulating drift.
    """

    entities: Iterable[EntityDescription]
    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("source rate must be positive")

    def __iter__(self) -> Iterator[EntityDescription]:
        interval = 1.0 / self.rate
        start = time.perf_counter()
        for index, entity in enumerate(self.entities):
            deadline = start + index * interval
            delay = deadline - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            yield entity


def arrival_schedule(n_items: int, rate: float, burst: int = 1) -> list[float]:
    """Deterministic arrival timestamps for a source of the given rate.

    ``burst`` > 1 emits items in groups (e.g. a source flushing its buffer
    every few milliseconds) while preserving the average rate.
    """
    if rate <= 0:
        raise ConfigurationError("source rate must be positive")
    if burst < 1:
        raise ConfigurationError("burst must be >= 1")
    times: list[float] = []
    for i in range(n_items):
        group = i // burst
        times.append(group * burst / rate)
    return times
