"""Update-aware ER: re-described entities replace their old state.

The paper's motivation includes "frequently changing or newly added
representations" (digital design / construction), but the base pipeline is
append-only: re-processing an id would leave the old token memberships in
the block collection and the old profile in the profile map, silently
corrupting future comparisons.

:class:`UpdateAwareERPipeline` fixes that: when an already-seen identifier
arrives again, the entity's previous block memberships and profile are
evicted first, then the new description is processed normally.  Matches
are output, so previously emitted matches are *not* retracted; instead the
set of matches whose evidence predates an update can be queried via
``stale_matches`` and handed to a downstream consumer (e.g. to re-verify
or to drop from clusters).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.config import StreamERConfig
from repro.core.pipeline import StreamERPipeline
from repro.types import EntityDescription, EntityId, Match


class UpdateAwareERPipeline:
    """Stream ER over an insert-or-update stream of entity descriptions."""

    def __init__(self, config: StreamERConfig | None = None, instrument: bool = False) -> None:
        self.pipeline = StreamERPipeline(config, instrument=instrument)
        self._keys_of: dict[EntityId, frozenset[str]] = {}
        self._version: dict[EntityId, int] = {}
        self._match_versions: dict[tuple[EntityId, EntityId], tuple[int, int]] = {}
        self.updates_applied = 0

    def version_of(self, eid: EntityId) -> int:
        """How many times this identifier has been described (0 = never)."""
        return self._version.get(eid, 0)

    def _evict(self, eid: EntityId) -> None:
        # discard() keeps the collection's O(1) size counters in sync and
        # drops blocks that become empty.
        blocks = self.pipeline.bb.blocks
        for key in self._keys_of.pop(eid, frozenset()):
            blocks.discard(key, eid)
        self.pipeline.lm.profiles.remove(eid)

    def process(self, entity: EntityDescription) -> list[Match]:
        """Insert or update one description; returns the new matches."""
        if entity.eid in self._version:
            self._evict(entity.eid)
            self.updates_applied += 1
        self._version[entity.eid] = self.version_of(entity.eid) + 1

        matches = self.pipeline.process(entity)

        profile = self.pipeline.lm.profiles.get(entity.eid)
        if profile is not None:
            self._keys_of[entity.eid] = frozenset(
                key for key in profile.tokens
                if entity.eid in self.pipeline.bb.blocks.block(key)
            )
        for match in matches:
            self._match_versions[match.key()] = (
                self.version_of(match.left),
                self.version_of(match.right),
            )
        return matches

    def process_many(self, entities: Iterable[EntityDescription]) -> list[Match]:
        out: list[Match] = []
        for entity in entities:
            out.extend(self.process(entity))
        return out

    def stale_matches(self) -> list[Match]:
        """Matches whose evidence predates a later update of an endpoint.

        The match set is append-only (it is the output stream); this view
        lets a downstream consumer re-verify or discard pairs invalidated
        by updates.
        """
        stale = []
        for match in self.pipeline.cl.matches.matches():
            left_v, right_v = self._match_versions.get(match.key(), (0, 0))
            if (
                self.version_of(match.left) > left_v
                or self.version_of(match.right) > right_v
            ):
                stale.append(match)
        return stale

    @property
    def matches(self) -> list[Match]:
        return self.pipeline.cl.matches.matches()
