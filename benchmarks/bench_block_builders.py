"""Extension — comparative analysis of block-building methods.

The paper builds on the comparative blocking analysis of Papadakis et al.
(PVLDB 2016) when it picks token blocking for heterogeneous data.  This
benchmark reruns that comparison on our synthetic data: every registered
block builder, on a low-heterogeneity (ag-like) and a high-heterogeneity
(movies-like) dataset, measured by PC after blocking, comparison count,
and build time.

Expected shape: token blocking offers the best completeness/comparisons
balance on heterogeneous data; q-grams buy typo robustness at a large
comparison cost; sorted-neighborhood is cheapest but incomplete; suffix
blocking sits between.
"""

from __future__ import annotations

import time

from common import bench_dataset, save_result

from repro.blocking import BLOCK_BUILDERS, count_comparisons, distinct_pairs
from repro.evaluation import format_table, pair_completeness, scientific
from repro.reading.profiles import ProfileBuilder


def run_builders(name: str) -> list[dict[str, object]]:
    ds = bench_dataset(name)
    builder = ProfileBuilder()
    profiles = [builder.build(e) for e in ds.entities]
    rows = []
    for method, build in sorted(BLOCK_BUILDERS.items()):
        start = time.perf_counter()
        blocks = build(profiles)
        elapsed = time.perf_counter() - start
        pairs = distinct_pairs(blocks, ds.clean_clean)
        rows.append(
            {
                "dataset": name,
                "builder": method,
                "blocks": len(blocks),
                "comparisons": scientific(count_comparisons(blocks, ds.clean_clean)),
                "PC": round(pair_completeness(pairs, ds.ground_truth), 3),
                "build_s": round(elapsed, 3),
            }
        )
    return rows


def test_block_builders(benchmark):
    rows = benchmark.pedantic(lambda: run_builders("ag"), rounds=1, iterations=1)
    rows = list(rows)
    rows.extend(run_builders("movies"))
    save_result("block_builders", format_table(rows))

    def of(dataset, method):
        return next(r for r in rows if r["dataset"] == dataset and r["builder"] == method)

    for dataset in ("ag", "movies"):
        token = of(dataset, "token")
        # Token blocking keeps high completeness on both datasets...
        assert float(token["PC"]) > 0.9
        # ...while sorted neighborhood (one pass, blind key) loses matches.
        assert float(of(dataset, "sorted-neighborhood")["PC"]) < float(token["PC"])
        # q-grams are at least as complete as token blocking (more keys).
        assert float(of(dataset, "qgrams")["PC"]) >= float(token["PC"]) - 0.01
