"""Figure 7 — effectiveness of comparison cleaning.

For a spread of block-cleaning configurations, plot the number of pairwise
comparisons entering comparison cleaning (||B||) against the number
retained afterwards (||B'||), for the six baseline meta-blocking pruning
schemes (CBS weighting, plus the RWNP+JS / RCNP+ARCS combos) and for our
I-WNP.  Reported for cddb (representative) and dbpedia (the outlier), as
in the paper.

Expected shape: baselines prune 1–2 orders of magnitude (RCNP up to 3 on
dbpedia); I-WNP stays consistently around one order of magnitude.
"""

from __future__ import annotations

import math

from common import bench_dataset, oracle_config, save_result

from repro.batch import comparison_cleaning_grid, BatchERConfig
from repro.blocking import block_filtering, block_purging, count_comparisons, token_blocking
from repro.core import StreamERPipeline
from repro.evaluation import format_table, scientific
from repro.metablocking import build_blocking_graph, get_pruning_scheme, get_weighting_scheme
from repro.reading.profiles import ProfileBuilder

BC_CONFIGS = ((0.005, 0.1), (0.005, 0.5), (0.05, 0.5))


def baseline_points(name: str) -> list[dict[str, object]]:
    ds = bench_dataset(name)
    builder = ProfileBuilder()
    profiles = [builder.build(e) for e in ds.entities]
    blocks_all = token_blocking(profiles)
    points = []
    bc_configs = BC_CONFIGS if name != "dbpedia" else ((0.005, 0.1), (0.005, 0.5))
    for r, s in bc_configs:
        cleaned = block_filtering(block_purging(blocks_all, r), s)
        before = count_comparisons(cleaned, ds.clean_clean)
        graph = build_blocking_graph(cleaned, clean_clean=ds.clean_clean)
        for config in comparison_cleaning_grid(
            BatchERConfig(r=r, s=s), clean_clean=ds.clean_clean
        ):
            weights = get_weighting_scheme(config.weighting)(graph)
            retained = get_pruning_scheme(config.pruning)(graph, weights)
            points.append(
                {
                    "approach": f"{config.weighting}+{config.pruning}",
                    "bc": f"r={r},s={s}",
                    "||B||": before,
                    "||B'||": len(retained),
                }
            )
    return points


def iwnp_points(name: str) -> list[dict[str, object]]:
    ds = bench_dataset(name)
    points = []
    configs = ((0.005, 0.1), (0.005, 0.05), (0.05, 0.05))
    if name == "dbpedia":
        configs = ((0.005, 0.1), (0.005, 0.05))
    for fraction, beta in configs:
        pipeline = StreamERPipeline(
            oracle_config(ds, alpha_fraction=fraction, beta=beta), instrument=False
        )
        result = pipeline.process_many(ds.stream())
        points.append(
            {
                "approach": "I-WNP",
                "bc": f"a={fraction}|D|,b={beta}",
                "||B||": result.comparisons_generated,
                "||B'||": result.comparisons_after_cleaning,
            }
        )
    return points


def reduction_orders(point: dict[str, object]) -> float:
    before, after = int(point["||B||"]), int(point["||B'||"])
    if after == 0 or before == 0:
        return 0.0
    return math.log10(before / after)


def test_fig7_comparison_cleaning(benchmark):
    benchmark.pedantic(lambda: iwnp_points("cddb"), rounds=1, iterations=1)

    blocks_output = []
    iwnp_orders: list[float] = []
    for name in ("cddb", "dbpedia"):
        points = baseline_points(name) + iwnp_points(name)
        for p in points:
            p["dataset"] = name
            p["orders_pruned"] = round(reduction_orders(p), 2)
            p["||B||"] = scientific(p["||B||"])  # type: ignore[arg-type]
            p["||B'||"] = scientific(p["||B'||"])  # type: ignore[arg-type]
        blocks_output.extend(points)
        iwnp_orders.extend(
            float(p["orders_pruned"]) for p in points if p["approach"] == "I-WNP"
        )

    save_result(
        "fig7_comparison_cleaning",
        format_table(
            blocks_output,
            columns=["dataset", "approach", "bc", "||B||", "||B'||", "orders_pruned"],
        ),
    )

    # I-WNP's reduction is stable, around one order of magnitude.
    assert all(0.3 <= o <= 2.0 for o in iwnp_orders), iwnp_orders
