"""Sharded-state scaling: multiprocess executor + ShardedBackend vs SEQ.

The tentpole claim of the backend seam is that hash-partitioned state is a
pure representation change (identical matches) that unlocks parallel
execution: the front of the pipeline keeps its state in a
:class:`~repro.core.backends.ShardedBackend` while the comparison load runs
on a process pool.  This benchmark times both executors end to end on a
generated dataset of ≥ 20 000 entities and writes the measurements to
``BENCH_sharded.json`` at the repository root.

Interpretation of the throughput ratio is hardware-dependent: process-based
parallelism can only pay for its IPC when the host grants more than one
effective CPU.  The speedup target (≥ 1.5×) is asserted when at least two
CPUs are available; on single-CPU hosts (CI sandboxes, cgroup-pinned
containers) the run still validates exact match equivalence and records
``cpu_limited: true`` so the committed JSON says what actually happened.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from common import effective_cpus, save_result

from repro.classification import OracleClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.backends import ShardedBackend
from repro.datasets import DatasetSpec, generate
from repro.evaluation import format_table
from repro.parallel import MultiprocessERPipeline

N_ENTITIES = 20_000
SHARDS = 4
WORKERS = 2
CHUNK_SIZE = 512
SPEEDUP_TARGET = 1.5
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"


def _dataset():
    return generate(
        DatasetSpec(
            name="bench-sharded",
            kind="dirty",
            size=N_ENTITIES,
            matches=6_000,
            avg_attributes=4.0,
            heterogeneity=0.3,
            vocab_rare=30_000,
            seed=7,
        )
    )


def _config(ds) -> StreamERConfig:
    return StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(ds), 0.05),
        beta=0.05,
        clean_clean=ds.clean_clean,
        classifier=OracleClassifier.from_pairs(ds.ground_truth),
    )


def run_benchmark() -> dict:
    ds = _dataset()
    entities = list(ds.stream())

    start = time.perf_counter()
    sequential = StreamERPipeline(_config(ds), instrument=False)
    seq_result = sequential.process_many(entities)
    seq_seconds = time.perf_counter() - start
    seq_pairs = sequential.cl.matches.pairs()

    start = time.perf_counter()
    parallel = MultiprocessERPipeline(
        _config(ds),
        workers=WORKERS,
        chunk_size=CHUNK_SIZE,
        backend=ShardedBackend(SHARDS),
    )
    par_result = parallel.run(entities)
    par_seconds = time.perf_counter() - start
    par_pairs = parallel.backend.matches.pairs()

    cpus = effective_cpus()
    speedup = seq_seconds / par_seconds if par_seconds > 0 else 0.0
    return {
        "benchmark": "sharded_backend_scaling",
        "entities": len(entities),
        "shards": SHARDS,
        "workers": WORKERS,
        "chunk_size": CHUNK_SIZE,
        "effective_cpus": cpus,
        "cpu_limited": cpus < 2,
        "sequential": {
            "seconds": round(seq_seconds, 3),
            "entities_per_second": round(len(entities) / seq_seconds, 1),
            "comparisons_executed": seq_result.comparisons_after_cleaning,
            "matches": len(seq_pairs),
        },
        "multiprocess_sharded": {
            "seconds": round(par_seconds, 3),
            "entities_per_second": round(len(entities) / par_seconds, 1),
            "comparisons_executed": par_result.comparisons_after_cleaning,
            "matches": len(par_pairs),
        },
        "speedup": round(speedup, 3),
        "speedup_target": SPEEDUP_TARGET,
        "speedup_target_met": speedup >= SPEEDUP_TARGET,
        "match_sets_identical": par_pairs == seq_pairs,
    }


def test_sharded_backend_scaling(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    payload = run_benchmark()
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    rows = [
        {
            "executor": "sequential",
            "seconds": payload["sequential"]["seconds"],
            "e_per_s": payload["sequential"]["entities_per_second"],
            "matches": payload["sequential"]["matches"],
        },
        {
            "executor": f"mp x{WORKERS} + sharded x{SHARDS}",
            "seconds": payload["multiprocess_sharded"]["seconds"],
            "e_per_s": payload["multiprocess_sharded"]["entities_per_second"],
            "matches": payload["multiprocess_sharded"]["matches"],
        },
    ]
    save_result(
        "sharded_backend",
        format_table(rows)
        + f"\nspeedup: {payload['speedup']}x on {payload['effective_cpus']} cpu(s)"
        + f"\n[saved to {RESULT_PATH}]",
    )

    # Sharding must never change the answer, on any hardware.
    assert payload["match_sets_identical"]
    assert payload["entities"] >= 20_000
    # The throughput target only makes sense with real parallelism.
    if not payload["cpu_limited"]:
        assert payload["speedup"] >= SPEEDUP_TARGET, payload
