"""Ablation — the two halves of stream block cleaning.

DESIGN.md calls out block pruning (α, Algorithm 1) and block ghosting
(β, Algorithm 2) as separate design choices; the paper always evaluates
them together.  This ablation runs the pipeline with each half disabled
in turn and reports comparisons, quality, and runtime:

* none — no block cleaning at all (the "I-WNP (No BC)" degraded variant);
* pruning-only — oversized blocks blacklisted, no per-entity ghosting;
* ghosting-only — per-entity key filtering, global blocks untouched;
* both — the full framework.
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.core import StreamERPipeline
from repro.evaluation import format_table, pair_completeness

VARIANTS = ("none", "pruning-only", "ghosting-only", "both")


def run_variant(name: str, variant: str) -> dict[str, object]:
    ds = bench_dataset(name)
    pipeline = StreamERPipeline(oracle_config(ds), instrument=False)
    # The config enables both; the ablation toggles the stages directly.
    pipeline.bb.enabled = variant in ("pruning-only", "both")
    pipeline.bg.enabled = variant in ("ghosting-only", "both")
    result = pipeline.process_many(ds.stream())
    pc = pair_completeness(result.match_pairs, ds.ground_truth)
    return {
        "dataset": name,
        "variant": variant,
        "comparisons": result.comparisons_generated,
        "after_cc": result.comparisons_after_cleaning,
        "PC": round(pc, 3),
        "rt_s": round(result.elapsed_seconds, 3),
    }


def test_ablation_block_cleaning(benchmark):
    benchmark.pedantic(
        lambda: run_variant("movies", "both"), rounds=1, iterations=1
    )

    rows = [
        run_variant(name, variant)
        for name in ("ag", "movies")
        for variant in VARIANTS
    ]
    save_result("ablation_block_cleaning", format_table(rows))

    for name in ("ag", "movies"):
        by = {r["variant"]: r for r in rows if r["dataset"] == name}
        # Each half prunes on its own; together they prune the most.
        assert by["both"]["comparisons"] <= by["pruning-only"]["comparisons"]
        assert by["both"]["comparisons"] <= by["ghosting-only"]["comparisons"]
        assert by["pruning-only"]["comparisons"] <= by["none"]["comparisons"]
        assert by["ghosting-only"]["comparisons"] <= by["none"]["comparisons"]
        # Cleaning trades (a little) completeness for the workload cut.
        assert by["none"]["PC"] >= by["both"]["PC"]
