"""Table II — dataset characteristics.

Regenerates the characteristics table for the synthetic stand-ins of the
five evaluation datasets: entity counts, ground-truth matches, and average
name-value pairs per profile (measured on the generated data, next to the
paper's nominal values).
"""

from __future__ import annotations

from common import BENCH_SCALES, bench_dataset, save_result

from repro.datasets import DATASET_NAMES, TABLE_II, characteristics, generate, spec
from repro.evaluation import format_table


def test_table2_characteristics(benchmark):
    benchmark.pedantic(
        lambda: generate(spec("movies", scale=BENCH_SCALES["movies"])),
        rounds=1, iterations=1,
    )

    rows = []
    for name in DATASET_NAMES:
        nominal = TABLE_II[name]
        ds = bench_dataset(name)
        measured = characteristics(ds)
        rows.append(
            {
                "dataset": name,
                "type": measured["type"],
                "scale": BENCH_SCALES[name],
                "entities(paper)": nominal.total_size,
                "entities(ours)": measured["entities"],
                "matches(paper)": nominal.matches,
                "matches(ours)": measured["matches"],
                "avg nv-pairs(paper)": nominal.avg_attributes,
                "avg nv-pairs(ours)": measured["avg_name_value_pairs"],
            }
        )
        # The scaled instance must track the paper's characteristics.
        assert measured["entities"] >= 2
        assert abs(measured["avg_name_value_pairs"] - nominal.avg_attributes) < 1.0

    save_result("table2_datasets", format_table(rows))
