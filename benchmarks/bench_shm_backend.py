"""Shared-memory columnar backend + persistent pool vs the old mp path.

The tentpole claim of the shared-memory backend is that the multiprocess
executor's losses were never about parallelism — they were per-increment
chunk-table serialization and pool re-spawning.  This benchmark stages the
dynamic-data scenario both ways on the same generated dataset, split into
increments like a stream of deltas:

* ``sequential`` — one interned sequential pipeline over all increments
  (the bar to beat, repeated and min-timed);
* ``mp_respawn`` — the old regime: in-memory backend, id-array chunk
  tables re-serialized per chunk, worker pool torn down and re-spawned for
  every increment (``persistent_pool=False``);
* ``mp_shm_persistent`` — the new regime: one
  :class:`~repro.core.backends.SharedMemoryBackend`, workers attached to
  the token columns once, row-number dispatch, the pool reused across all
  increments via :class:`~repro.streaming.MultiprocessStreamRunner`.

Measurements land in ``BENCH_shm_backend.json`` at the repository root.
``mp_speedup`` is the sequential / shm-persistent wall-clock ratio; the
> 1 target is asserted only when at least two effective CPUs are granted —
on single-CPU hosts the JSON records ``cpu_limited: true`` and the run
still validates exact match equality and zero leaked ``/dev/shm``
segments.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from common import effective_cpus, save_result

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.backends import active_shm_segments
from repro.datasets import DatasetSpec, generate
from repro.evaluation import format_table
from repro.parallel import MultiprocessERPipeline
from repro.streaming import MultiprocessStreamRunner

N_ENTITIES = 20_000
N_INCREMENTS = 8
THRESHOLD = 0.7
SEQ_REPS = 3
WORKERS = 2
CHUNK_SIZE = 512
SPEEDUP_TARGET = 1.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_shm_backend.json"


def _dataset(n_entities: int):
    return generate(
        DatasetSpec(
            name="bench-shm-backend",
            kind="dirty",
            size=n_entities,
            matches=max(1, int(n_entities * 0.3)),
            avg_attributes=4.0,
            heterogeneity=0.5,
            vocab_rare=30_000,
            seed=7,
        )
    )


def _config(ds) -> StreamERConfig:
    return StreamERConfig.interned(
        alpha=StreamERConfig.alpha_for(len(ds), 0.05),
        beta=0.05,
        clean_clean=ds.clean_clean,
        classifier=ThresholdClassifier(THRESHOLD),
    )


def _increments(entities: list, n: int) -> list[list]:
    size = max(1, (len(entities) + n - 1) // n)
    return [entities[i : i + size] for i in range(0, len(entities), size)]


def run_benchmark(n_entities: int = N_ENTITIES) -> dict:
    ds = _dataset(n_entities)
    entities = list(ds.stream())
    increments = _increments(entities, N_INCREMENTS)

    seq_seconds = float("inf")
    seq_pairs = None
    for _ in range(SEQ_REPS):
        start = time.perf_counter()
        sequential = StreamERPipeline(_config(ds), instrument=False)
        for increment in increments:
            sequential.process_many(increment)
        seq_seconds = min(seq_seconds, time.perf_counter() - start)
        seq_pairs = sequential.cl.matches.pairs()

    # The old regime: chunk tables over the wire, a fresh pool per increment.
    start = time.perf_counter()
    respawn = MultiprocessERPipeline(
        _config(ds),
        workers=WORKERS,
        chunk_size=CHUNK_SIZE,
        persistent_pool=False,
    )
    for increment in increments:
        respawn.run(increment)
    respawn_seconds = time.perf_counter() - start
    respawn_pairs = respawn.backend.matches.pairs()
    respawn_spawns = respawn.pool_spawns
    respawn.close()

    # The new regime: shared columns, row dispatch, one pool for the run.
    start = time.perf_counter()
    runner = MultiprocessStreamRunner(
        _config(ds), workers=WORKERS, chunk_size=CHUNK_SIZE
    )
    with runner:
        for increment in increments:
            runner.process_increment(increment)
        shm_pairs = runner.match_pairs()
        shm_prefix = runner.backend.name
        shm_bytes = runner.backend.shm_bytes()
        shm_segments = len(runner.backend.segment_names())
        pool_spawns = runner.pipeline.pool_spawns
        pool_reuses = runner.pipeline.pool_reuses
        dispatch = runner.pipeline.dispatch_mode
    shm_seconds = time.perf_counter() - start
    leaked = len(active_shm_segments(shm_prefix))

    cpus = effective_cpus()
    mp_speedup = seq_seconds / shm_seconds if shm_seconds > 0 else 0.0
    speedup_vs_respawn = (
        respawn_seconds / shm_seconds if shm_seconds > 0 else 0.0
    )
    return {
        "benchmark": "shm_backend_persistent_pool",
        "entities": len(entities),
        "increments": len(increments),
        "workers": WORKERS,
        "chunk_size": CHUNK_SIZE,
        "effective_cpus": cpus,
        "cpu_limited": cpus < 2,
        "sequential": {
            "seconds": round(seq_seconds, 3),
            "entities_per_second": round(len(entities) / seq_seconds, 1),
            "matches": len(seq_pairs),
        },
        "mp_respawn": {
            "seconds": round(respawn_seconds, 3),
            "entities_per_second": round(len(entities) / respawn_seconds, 1),
            "matches": len(respawn_pairs),
            "pool_spawns": respawn_spawns,
            "dispatch_mode": "ids",
        },
        "mp_shm_persistent": {
            "seconds": round(shm_seconds, 3),
            "entities_per_second": round(len(entities) / shm_seconds, 1),
            "matches": len(shm_pairs),
            "pool_spawns": pool_spawns,
            "pool_reuses": pool_reuses,
            "dispatch_mode": dispatch,
            "shm_bytes": shm_bytes,
            "shm_segments": shm_segments,
        },
        "mp_speedup": round(mp_speedup, 3),
        "speedup_vs_respawn": round(speedup_vs_respawn, 3),
        "speedup_target": SPEEDUP_TARGET,
        "speedup_target_met": mp_speedup > SPEEDUP_TARGET,
        "match_sets_identical": shm_pairs == seq_pairs
        and respawn_pairs == seq_pairs,
        "leaked_shm_segments": leaked,
    }


def test_shm_backend_persistent_pool(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    payload = run_benchmark()
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    rows = [
        {
            "executor": "sequential",
            "seconds": payload["sequential"]["seconds"],
            "e_per_s": payload["sequential"]["entities_per_second"],
            "matches": payload["sequential"]["matches"],
        },
        {
            "executor": f"mp x{WORKERS} respawn+tables",
            "seconds": payload["mp_respawn"]["seconds"],
            "e_per_s": payload["mp_respawn"]["entities_per_second"],
            "matches": payload["mp_respawn"]["matches"],
        },
        {
            "executor": f"mp x{WORKERS} shm+persistent",
            "seconds": payload["mp_shm_persistent"]["seconds"],
            "e_per_s": payload["mp_shm_persistent"]["entities_per_second"],
            "matches": payload["mp_shm_persistent"]["matches"],
        },
    ]
    save_result(
        "shm_backend",
        format_table(rows)
        + f"\nmp speedup vs seq: {payload['mp_speedup']}x"
        + f" | vs respawn: {payload['speedup_vs_respawn']}x"
        + f" on {payload['effective_cpus']} cpu(s)"
        + f"\n[saved to {RESULT_PATH}]",
    )

    # Representation changes must never change the answer, on any hardware,
    # and the creator must never leak a segment.
    assert payload["match_sets_identical"]
    assert payload["leaked_shm_segments"] == 0
    assert payload["mp_shm_persistent"]["dispatch_mode"] == "shm"
    assert payload["mp_shm_persistent"]["pool_spawns"] == 1
    # The throughput target only makes sense with real parallelism.
    if not payload["cpu_limited"]:
        assert payload["mp_speedup"] > SPEEDUP_TARGET, payload


if __name__ == "__main__":
    payload = run_benchmark()
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
