"""Figure 6 — computation bottlenecks of the sequential pipeline.

Runs the instrumented sequential pipeline over every dataset with the
paper's parameters (β = 0.05; α = 0.005·|D| for dbpedia, else 0.05·|D|)
and reports each stage's share of the total runtime.  The paper's finding:
``f_co`` and ``f_cc`` are the main bottlenecks, followed by ``f_cg`` on
the biggest dataset and ``f_bb+bp`` on the small ones.
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.core import StreamERPipeline
from repro.core.stages import STAGE_ORDER
from repro.datasets import DATASET_NAMES
from repro.evaluation import format_table


def run_instrumented(name: str) -> dict[str, float]:
    ds = bench_dataset(name)
    alpha_fraction = 0.005 if name == "dbpedia" else 0.05
    pipeline = StreamERPipeline(oracle_config(ds, alpha_fraction), instrument=True)
    pipeline.process_many(ds.stream())
    return pipeline.timings.share(), pipeline.timings.total()  # type: ignore[return-value]


def test_fig6_stage_shares(benchmark):
    shares_by_dataset: dict[str, dict[str, float]] = {}
    totals: dict[str, float] = {}
    for name in DATASET_NAMES:
        if name == "cora":
            share, total = benchmark.pedantic(
                lambda: run_instrumented("cora"), rounds=1, iterations=1
            )
        else:
            share, total = run_instrumented(name)
        shares_by_dataset[name] = share
        totals[name] = total

    rows = []
    for name, share in shares_by_dataset.items():
        row: dict[str, object] = {"dataset": name, "total_s": round(totals[name], 3)}
        for stage in STAGE_ORDER:
            row[stage] = round(share.get(stage, 0.0), 3)
        rows.append(row)
    save_result("fig6_bottlenecks", format_table(rows))

    # Paper's qualitative finding on the biggest dataset: co and cc are the
    # top bottlenecks among all stages.
    big = shares_by_dataset["dbpedia"]
    top_two = sorted(big, key=big.get, reverse=True)[:2]  # type: ignore[arg-type]
    assert set(top_two) == {"co", "cc"}
