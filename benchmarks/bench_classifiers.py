"""Extension — classification strategies on the same blocking output.

The paper fixes classification to a ground-truth oracle to isolate the
blocking contribution; real deployments must actually decide.  This
benchmark runs the identical pipeline (same blocking, same comparisons)
with three classifiers and reports end-quality:

* similarity threshold (the common strategy the paper describes),
* a learned logistic model over similarity features (trained on a small
  labeled sample),
* the oracle (upper bound: PC at precision 1).
"""

from __future__ import annotations

import random

from common import bench_dataset, save_result

from repro.classification import (
    LearnedClassifier,
    OracleClassifier,
    ThresholdClassifier,
)
from repro.core import StreamERConfig, StreamERPipeline
from repro.evaluation import format_table, precision_recall_f1
from repro.reading.profiles import ProfileBuilder


def train_learned(ds, sample=120, seed=11) -> LearnedClassifier:
    builder = ProfileBuilder()
    by_id = {e.eid: builder.build(e) for e in ds.entities}
    truth = set(ds.ground_truth)
    rng = random.Random(seed)
    ids = sorted(by_id, key=repr)
    positives = [(by_id[i], by_id[j], True) for i, j in sorted(truth, key=repr)[:sample]]
    negatives = []
    while len(negatives) < sample:
        i, j = rng.sample(ids, 2)
        if tuple(sorted((i, j), key=repr)) not in truth and i != j:
            negatives.append((by_id[i], by_id[j], False))
    return LearnedClassifier.train(positives + negatives)


def run(name: str, label: str, classifier) -> dict[str, object]:
    ds = bench_dataset(name)
    config = StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(ds), 0.05),
        beta=0.05,
        clean_clean=ds.clean_clean,
        classifier=classifier,
    )
    pipeline = StreamERPipeline(config, instrument=False)
    result = pipeline.process_many(ds.stream())
    precision, recall, f1 = precision_recall_f1(result.match_pairs, ds.ground_truth)
    return {
        "dataset": name,
        "classifier": label,
        "matches": len(result.match_pairs),
        "precision": round(precision, 3),
        "recall": round(recall, 3),
        "f1": round(f1, 3),
    }


def test_classifiers(benchmark):
    name = "ag"
    ds = bench_dataset(name)
    learned = train_learned(ds)

    rows = [
        benchmark.pedantic(
            lambda: run(name, "threshold(0.5)", ThresholdClassifier(0.5)),
            rounds=1, iterations=1,
        ),
        run(name, "learned logistic", learned),
        run(name, "oracle", OracleClassifier.from_pairs(ds.ground_truth)),
    ]
    save_result("classifiers", format_table(rows))

    by = {r["classifier"]: r for r in rows}
    # Oracle is the upper bound on both axes.
    assert by["oracle"]["precision"] == 1.0
    for label in ("threshold(0.5)", "learned logistic"):
        assert by[label]["recall"] <= by["oracle"]["recall"] + 1e-9
    # The learned model recovers more true matches than the fixed
    # threshold (it learned where the decision boundary actually lies)
    # while keeping F1 high — on this synthetic data the duplicates are
    # clean enough that a hand-picked threshold is already near-optimal,
    # so the learned model's advantage shows on recall, not on F1.
    assert by["learned logistic"]["recall"] >= by["threshold(0.5)"]["recall"]
    assert by["learned logistic"]["f1"] > 0.85
