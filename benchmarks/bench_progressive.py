"""Extension — progressive ER recall curves.

When the comparison budget is a fraction of the retained comparisons,
best-first scheduling should surface most true matches long before the
budget runs out.  This benchmark compares the two schedulers (global
top-comparisons, per-entity round-robin) against a pessimal (reversed)
order on the ag-like dataset and reports the recall curve.
"""

from __future__ import annotations

from common import bench_dataset, save_result

from repro.blocking import block_filtering, block_purging, token_blocking
from repro.classification import OracleClassifier
from repro.evaluation import format_table
from repro.progressive import ProgressiveConfig, ProgressiveResolver, recall_curve
from repro.reading.profiles import ProfileBuilder


def build_inputs(name: str):
    ds = bench_dataset(name)
    builder = ProfileBuilder()
    profiles = {e.eid: builder.build(e) for e in ds.entities}
    blocks = block_filtering(
        block_purging(token_blocking(profiles.values()), r=0.05), s=0.8
    )
    oracle = OracleClassifier.from_pairs(ds.ground_truth)
    return ds, profiles, blocks, oracle


def test_progressive_recall(benchmark):
    ds, profiles, blocks, oracle = build_inputs("ag")

    def run(scheduler: str):
        resolver = ProgressiveResolver(
            ProgressiveConfig(scheduler=scheduler, classifier=oracle)
        )
        return list(resolver.resolve(blocks, profiles))

    steps_global = benchmark.pedantic(lambda: run("global"), rounds=1, iterations=1)
    steps_rr = run("round-robin")

    rows = []
    curves = {}
    for label, steps in (
        ("global", steps_global),
        ("round-robin", steps_rr),
        ("pessimal", list(reversed(steps_global))),
    ):
        curve = recall_curve(steps, ds.ground_truth, points=10)
        curves[label] = curve
        for executed, recall in curve:
            rows.append(
                {
                    "scheduler": label,
                    "comparisons": executed,
                    "recall": round(recall, 3),
                }
            )
    save_result("progressive_recall", format_table(rows))

    # At 30% of the budget, both progressive schedulers are far ahead of
    # the pessimal order.
    def recall_at(label, fraction):
        curve = curves[label]
        index = max(0, min(len(curve) - 1, round(fraction * len(curve)) - 1))
        return curve[index][1]

    assert recall_at("global", 0.3) > recall_at("pessimal", 0.3)
    assert recall_at("round-robin", 0.3) > recall_at("pessimal", 0.3)
    # And the final recall of all three converges (same comparison set).
    assert abs(curves["global"][-1][1] - curves["pessimal"][-1][1]) < 1e-9
