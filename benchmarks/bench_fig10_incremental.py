"""Figure 10 — incremental ER runtimes on the movies dataset.

The dataset is split into a varying number of equally sized increments and
processed end to end by the four approaches: I-WNP (ours), Batch
(recomputed per increment, comparisons not repeated), PI-Block, and I-WNP
without block cleaning.

Expected shape (paper): I-WNP's total runtime is flat in the number of
increments and the fastest overall; Batch grows with the number of
increments; the no-block-cleaning approaches (PI-Block, I-WNP No BC) are
slowest.  PC ≈ 0.90 for BC+CC approaches vs ≈ 0.97 for CC-only ones.
"""

from __future__ import annotations

from common import bench_dataset, save_result

from repro.classification import OracleClassifier
from repro.evaluation import format_table
from repro.incremental import run_incremental_comparison

INCREMENT_COUNTS = (2, 5, 10)


def run_all() -> list[dict[str, object]]:
    ds = bench_dataset("movies")
    oracle = OracleClassifier.from_pairs(ds.ground_truth)
    rows = []
    for n in INCREMENT_COUNTS:
        for run in run_incremental_comparison(ds, n, oracle):
            rows.append(
                {
                    "increments": n,
                    "approach": run.approach,
                    "total_s": round(run.total_seconds, 3),
                    "PC": round(run.pair_completeness, 3),
                    "matches": run.matches_found,
                }
            )
    return rows


def test_fig10_incremental(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result("fig10_incremental", format_table(rows))

    by_key = {(r["increments"], r["approach"]): r for r in rows}
    for n in INCREMENT_COUNTS:
        ours = by_key[(n, "I-WNP")]
        # The no-block-cleaning approaches are always slower than ours...
        for approach in ("PI-Block", "I-WNP (No BC)"):
            assert ours["total_s"] <= by_key[(n, approach)]["total_s"], (n, approach)
        # ...and CC-only approaches have (at least) our completeness.
        assert by_key[(n, "I-WNP (No BC)")]["PC"] >= ours["PC"]

    # At many increments ours beats Batch too (the curves cross as Batch's
    # per-increment recomputation grows).
    assert (
        by_key[(10, "I-WNP")]["total_s"] <= by_key[(10, "Batch")]["total_s"]
    )

    # Batch grows with the number of increments; ours stays stable.
    batch_growth = (
        by_key[(10, "Batch")]["total_s"] / max(by_key[(2, "Batch")]["total_s"], 1e-9)
    )
    ours_growth = (
        by_key[(10, "I-WNP")]["total_s"] / max(by_key[(2, "I-WNP")]["total_s"], 1e-9)
    )
    assert batch_growth > ours_growth
