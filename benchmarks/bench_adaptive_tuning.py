"""Extension — the self-tuning framework under workload drift.

§VI names "devising a self-tuning framework" as future work, and §IV-A
flags dynamic β specifically.  This benchmark streams a workload whose
token distribution drifts mid-stream (a calm product feed followed by a
burst of near-identical hot-topic descriptions) and compares a static-β
pipeline against the β controller on the comparison workload executed,
holding quality.
"""

from __future__ import annotations

import random

from common import save_result

from repro.adaptive import BetaController, SelfTuningERPipeline
from repro.classification import OracleClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.datasets import DatasetSpec, generate
from repro.evaluation import format_table, pair_completeness
from repro.types import EntityDescription


def drifting_stream() -> tuple[list[EntityDescription], set]:
    """Calm segment from the generator + a hot-topic burst appended."""
    base = generate(
        DatasetSpec(
            name="calm", kind="dirty", size=1_500, matches=900,
            avg_attributes=5.0, vocab_rare=15_000, seed=64,
        )
    )
    rng = random.Random(99)
    burst = [
        EntityDescription.create(
            ("hot", i),
            {
                "headline": "breaking hot topic everyone writes about",
                "detail": f"variant {rng.randint(0, 30)} take {rng.randint(0, 8)}",
            },
        )
        for i in range(600)
    ]
    entities = list(base.entities) + burst
    return entities, set(base.ground_truth)


def run(tuned: bool, entities, truth):
    config = StreamERConfig(
        alpha=10_000,  # pruning out of the way: isolate the β mechanism
        beta=0.02,
        classifier=OracleClassifier.from_pairs(truth),
    )
    if tuned:
        pipeline = SelfTuningERPipeline(
            config,
            BetaController(target_comparisons=40, interval=20, smoothing=0.3),
        )
        pipeline.process_many(entities)
        inner = pipeline.pipeline
        label = "self-tuning β"
        final_beta = pipeline.beta
    else:
        inner = StreamERPipeline(config, instrument=False)
        inner.process_many(entities)
        label = "static β"
        final_beta = config.beta
    return {
        "pipeline": label,
        "final_beta": round(final_beta, 4),
        "comparisons": inner.cg.generated,
        "after_cc": inner.cc.retained,
        "PC": round(pair_completeness(inner.cl.matches.pairs(), truth), 3),
    }


def test_adaptive_tuning(benchmark):
    entities, truth = drifting_stream()
    static = benchmark.pedantic(
        lambda: run(False, entities, truth), rounds=1, iterations=1
    )
    tuned = run(True, entities, truth)
    save_result("adaptive_tuning", format_table([static, tuned]))

    # The controller raises β under the burst and cuts the workload...
    assert tuned["final_beta"] > static["final_beta"]
    assert tuned["comparisons"] < static["comparisons"]
    # ...without giving up meaningful completeness on the calm segment.
    assert tuned["PC"] >= static["PC"] - 0.05
