"""Figure 13 — output throughput over time for source rates A–D.

Streams dbpedia-like descriptions into the calibrated simulated framework
at the paper's four source rates: (A) 5 000, (B) 10 000, (C) 50 000 and
(D) 100 000 descriptions/s.

Expected shape (paper): below capacity the output rate matches the input
rate (case A); near capacity throughput is approximately stable (B); above
capacity throughput starts high while buffers fill and then stabilizes at
a system-dependent rate (C, D) — the paper's machine stabilized around
7 500–8 000 descriptions/s.
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.evaluation import format_table, sparkline
from repro.parallel import calibrate_service_model, default_simulator_config
from repro.streaming import SimulatedStreamRunner

RATES = {"A": 5_000.0, "B": 10_000.0, "C": 50_000.0, "D": 100_000.0}
N_ITEMS = 60_000


def calibrated_runner() -> SimulatedStreamRunner:
    ds = bench_dataset("dbpedia")
    service = calibrate_service_model(
        ds.entities, oracle_config(ds, alpha_fraction=0.005)
    )
    return SimulatedStreamRunner(
        service, processes=25, config=default_simulator_config(service)
    )


def test_fig13_throughput(benchmark):
    runner = calibrated_runner()

    def run_all():
        return {
            case: runner.run(N_ITEMS, rate, window=0.5)
            for case, rate in RATES.items()
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for case, report in reports.items():
        series = [v for _, v in report.throughput]
        rows.append(
            {
                "case": case,
                "rate/s": RATES[case],
                "stable_throughput/s": round(report.stable_throughput),
                "throughput_over_time": sparkline(series, width=32),
            }
        )
    save_result("fig13_throughput", format_table(rows))

    stable = {case: reports[case].stable_throughput for case in RATES}
    # (A) below capacity: output matches input.
    assert stable["A"] == round(RATES["A"] * 1.0, -3) or abs(
        stable["A"] - RATES["A"]
    ) / RATES["A"] < 0.1
    # (C)/(D) above capacity: throughput is rate-independent (saturated).
    assert abs(stable["C"] - stable["D"]) / max(stable["D"], 1.0) < 0.15
    # Saturated throughput is the system capacity: above A, below C's rate.
    assert RATES["A"] <= stable["D"] <= RATES["C"]
