"""Table III — comparisons resulting from block cleaning.

Left half: baseline block cleaning — block purging (r ∈ {0.05, 0.005}) +
block filtering (s ∈ {0.1, 0.5, 0.8}) — measured as the aggregate
cardinality ||B|| of the cleaned collection.

Right half: stream-enabled block cleaning — block pruning
(α ∈ {0.05·|D|, 0.005·|D|}) + block ghosting (β ∈ {0.1, 0.05, 0.01}) —
measured as the number of comparisons the stream pipeline generates after
BC (comparison cleaning disabled).

Expected shape (paper): the most aggressive baseline config prunes about
two orders of magnitude more than the most aggressive stream config; the
gap closes for the lax configurations.  For dbpedia only the aggressive
r/α are run (as in the paper).
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.batch import R_VALUES, S_VALUES, ALPHA_FRACTIONS, BETA_VALUES
from repro.blocking import block_filtering, block_purging, count_comparisons, token_blocking
from repro.core import StreamERPipeline
from repro.datasets import DATASET_NAMES
from repro.evaluation import format_table, scientific
from repro.reading.profiles import ProfileBuilder


def baseline_counts(name: str) -> dict[tuple[float, float], int]:
    ds = bench_dataset(name)
    builder = ProfileBuilder()
    profiles = [builder.build(e) for e in ds.entities]
    blocks = token_blocking(profiles)
    counts: dict[tuple[float, float], int] = {}
    r_values = (0.005,) if name == "dbpedia" else R_VALUES
    for r in r_values:
        purged = block_purging(blocks, r)
        for s in S_VALUES:
            cleaned = block_filtering(purged, s)
            counts[(r, s)] = count_comparisons(cleaned, ds.clean_clean)
    return counts


def stream_counts(name: str) -> dict[tuple[float, float], int]:
    ds = bench_dataset(name)
    counts: dict[tuple[float, float], int] = {}
    fractions = (0.005,) if name == "dbpedia" else ALPHA_FRACTIONS
    for fraction in fractions:
        for beta in BETA_VALUES:
            config = oracle_config(
                ds, alpha_fraction=fraction, beta=beta,
                enable_comparison_cleaning=False,
            )
            pipeline = StreamERPipeline(config, instrument=False)
            result = pipeline.process_many(ds.stream())
            counts[(fraction, beta)] = result.comparisons_generated
    return counts


def test_table3_block_cleaning(benchmark):
    benchmark.pedantic(lambda: stream_counts("ag"), rounds=1, iterations=1)

    rows = []
    gap_checks: list[tuple[int, int]] = []
    for name in DATASET_NAMES:
        base = baseline_counts(name)
        ours = stream_counts(name)
        row: dict[str, object] = {"dataset": name}
        for (r, s), count in sorted(base.items()):
            row[f"r={r},s={s}"] = scientific(count)
        for (a, b), count in sorted(ours.items()):
            row[f"a={a}|D|,b={b}"] = scientific(count)
        rows.append(row)
        aggressive_base = base[(0.005, 0.1)]
        aggressive_ours = ours[(0.005, 0.1)]
        gap_checks.append((aggressive_base, aggressive_ours))

    save_result("table3_block_cleaning", format_table(rows))

    # Paper's finding: baseline block cleaning prunes (much) more than the
    # stream-enabled variant under the aggressive configurations.
    stronger = sum(1 for base, ours in gap_checks if base <= ours)
    assert stronger >= 3, gap_checks
