"""Ablation — the value of standardization in data reading.

The paper's running example hinges on data reading: only after "fiber" is
standardized to "fibre" and "timber" to "wood" do e4 and e5 join the
blocks where their matches live.  This ablation reproduces that mechanism
at dataset scale: a systematic vocabulary variation (a "dialect" — think
US/GB spelling or source-specific abbreviations, with a known dictionary)
is injected into a generated dataset, and the same pipeline runs once with
a standardizer that knows the dictionary and once with lowercasing only.
"""

from __future__ import annotations

import random

from common import save_result

from repro.classification import OracleClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.datasets import DatasetSpec, generate
from repro.evaluation import format_table, pair_completeness
from repro.reading import ProfileBuilder, Standardizer
from repro.types import EntityDescription

DIALECT_RATE = 0.35  # fraction of token occurrences written in the dialect


def dialected_dataset():
    """A generated dataset with a systematic spelling variation injected."""
    ds = generate(
        DatasetSpec(
            name="dialect", kind="dirty", size=1_200, matches=800,
            avg_attributes=5.0, vocab_rare=12_000, seed=303,
        )
    )
    rng = random.Random(9)
    dictionary: dict[str, str] = {}  # dialect form -> canonical form

    def dialect(token: str) -> str:
        variant = token + "e" if not token.endswith("e") else token[:-1]
        dictionary[variant] = token
        return variant

    entities = []
    for entity in ds.entities:
        attributes = []
        for name, value in entity.attributes:
            tokens = [
                dialect(t) if rng.random() < DIALECT_RATE else t
                for t in value.split()
            ]
            attributes.append((name, " ".join(tokens)))
        entities.append(
            EntityDescription(eid=entity.eid, attributes=tuple(attributes), source=None)
        )
    ds.entities = entities
    return ds, dictionary


def run(ds, dictionary: dict[str, str] | None) -> dict[str, object]:
    if dictionary is not None:
        builder = ProfileBuilder(
            standardizer=Standardizer(
                spelling=dictionary, abbreviations={}, synonyms={}, stem_plurals=False
            )
        )
        label = "standardizer with variant dictionary"
    else:
        builder = ProfileBuilder(
            standardizer=Standardizer(
                spelling={}, abbreviations={}, synonyms={}, stem_plurals=False
            )
        )
        label = "lowercase only"
    config = StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(ds), 0.05),
        beta=0.05,
        profile_builder=builder,
        classifier=OracleClassifier.from_pairs(ds.ground_truth),
    )
    pipeline = StreamERPipeline(config, instrument=False)
    result = pipeline.process_many(ds.stream())
    return {
        "data_reading": label,
        "PC": round(pair_completeness(result.match_pairs, ds.ground_truth), 3),
        "comparisons": result.comparisons_after_cleaning,
        "rt_s": round(result.elapsed_seconds, 3),
    }


def test_ablation_standardization(benchmark):
    ds, dictionary = dialected_dataset()
    with_std = benchmark.pedantic(
        lambda: run(ds, dictionary), rounds=1, iterations=1
    )
    without = run(ds, None)
    save_result("ablation_standardization", format_table([with_std, without]))

    # Standardization recovers matches hidden behind the variation —
    # the Figure 2 narrative, quantified.
    assert float(with_std["PC"]) > float(without["PC"]) + 0.02
