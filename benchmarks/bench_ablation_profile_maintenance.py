"""Ablation — the profile-maintenance design choice (§IV-A).

The framework stores only identifiers in blocks and re-attaches full
profiles via the profile map in ``f_lm``.  This ablation contrasts that
choice against the rejected alternative (profiles inline in every block):
identical matches, but the inline variant multiplies the block-state
memory by roughly the average number of blocks per entity.
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.core import StreamERPipeline
from repro.core.variants import InlineProfilePipeline, approx_block_bytes
from repro.evaluation import format_table


def run_pair(name: str) -> list[dict[str, object]]:
    ds = bench_dataset(name)

    reference = StreamERPipeline(oracle_config(ds), instrument=False)
    ref_result = reference.process_many(ds.stream())
    id_blocks = {key: list(b) for key, b in reference.bb.blocks.items()}

    inline = InlineProfilePipeline(oracle_config(ds))
    inline_result = inline.process_many(ds.stream())

    assert inline_result.match_pairs == ref_result.match_pairs

    return [
        {
            "dataset": name,
            "variant": "id-blocks + profile map (paper)",
            "rt_s": round(ref_result.elapsed_seconds, 3),
            "block_state_MB": round(approx_block_bytes(id_blocks) / 1e6, 2),
            "matches": len(ref_result.match_pairs),
        },
        {
            "dataset": name,
            "variant": "profiles inline in blocks",
            "rt_s": round(inline_result.elapsed_seconds, 3),
            "block_state_MB": round(inline.block_state_bytes() / 1e6, 2),
            "matches": len(inline_result.match_pairs),
        },
    ]


def test_ablation_profile_maintenance(benchmark):
    rows = benchmark.pedantic(lambda: run_pair("movies"), rounds=1, iterations=1)
    rows = list(rows)
    rows.extend(run_pair("cddb"))
    save_result("ablation_profile_maintenance", format_table(rows))

    for name in ("movies", "cddb"):
        pair = [r for r in rows if r["dataset"] == name]
        id_variant = next(r for r in pair if "paper" in str(r["variant"]))
        inline_variant = next(r for r in pair if "inline" in str(r["variant"]))
        # Identical results, but the inline block state is much bigger.
        assert inline_variant["matches"] == id_variant["matches"]
        assert (
            float(inline_variant["block_state_MB"])
            > 2 * float(id_variant["block_state_MB"])
        )
