"""Figure 12 — per-entity latency at source rates 5 000 and 100 000 desc/s.

The paper streams 3M dbpedia descriptions through the optimized framework
(PP, 25 processes) and finds latency robust to the source rate — in the
10–100 ms band with occasional peaks.  We calibrate the simulator from a
real sequential run and stream at the same two extreme rates (A and D).
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.evaluation import format_table
from repro.parallel import calibrate_service_model, default_simulator_config
from repro.streaming import SimulatedStreamRunner

RATES = {"A": 5_000.0, "D": 100_000.0}
N_ITEMS = 60_000


def calibrated_runner() -> SimulatedStreamRunner:
    ds = bench_dataset("dbpedia")
    service = calibrate_service_model(
        ds.entities, oracle_config(ds, alpha_fraction=0.005)
    )
    return SimulatedStreamRunner(
        service, processes=25, config=default_simulator_config(service)
    )


def test_fig12_latency(benchmark):
    runner = calibrated_runner()

    def run_all():
        return {
            case: runner.run(N_ITEMS, rate) for case, rate in RATES.items()
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Peak attribution (the paper leaves investigating the latency peaks to
    # future work): trace a smaller run and attribute the slowest 1% of
    # latencies to the stage where each item spent most of its time.
    from repro.streaming import arrival_schedule

    traced = runner.simulator.run(
        arrival_schedule(10_000, RATES["D"]), trace=True
    )
    attribution = traced.trace.peak_attribution(traced.latencies, quantile=0.99)

    rows = []
    for case, report in reports.items():
        lat = report.latency
        rows.append(
            {
                "case": case,
                "rate/s": RATES[case],
                "entities": report.entities,
                "mean_ms": round(lat.mean * 1e3, 2),
                "p50_ms": round(lat.p50 * 1e3, 2),
                "p95_ms": round(lat.p95 * 1e3, 2),
                "p99_ms": round(lat.p99 * 1e3, 2),
                "max_ms": round(lat.maximum * 1e3, 2),
            }
        )
    attribution_line = "latency peaks dominated by stage: " + ", ".join(
        f"{stage}×{count}" for stage, count in sorted(
            attribution.items(), key=lambda kv: -kv[1]
        )
    )
    save_result("fig12_latency", format_table(rows) + "\n" + attribution_line)
    assert attribution  # at least one peak attributed

    lat_a = reports["A"].latency
    lat_d = reports["D"].latency
    # Latency is robust to the source rate (same order of magnitude)...
    assert lat_d.p50 < lat_a.p50 * 20
    # ...within the real-time band the paper reports (≤ ~100 ms typical)...
    assert lat_a.p95 < 0.2 and lat_d.p95 < 0.2
    # ...with occasional latency peaks well above the median.
    assert lat_d.maximum > 3 * lat_d.p50
