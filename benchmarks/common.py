"""Shared utilities for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(§V) on the synthetic Table II datasets, prints the same rows/series the
paper reports, and archives them under ``benchmarks/results/`` so that
EXPERIMENTS.md can quote them.

Scales are chosen so the full harness completes in minutes on one box; the
*relative* dataset sizes of the paper (dbpedia ≫ movies ≫ the rest) are
preserved.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.classification import OracleClassifier
from repro.core import StreamERConfig
from repro.datasets import GeneratedDataset, load

RESULTS_DIR = Path(__file__).parent / "results"


def effective_cpus() -> int:
    """CPUs actually usable by this process, not CPUs in the machine.

    ``os.cpu_count()`` reports the box; cgroup-pinned containers and
    taskset-restricted CI runners grant fewer.  Speedup targets and the
    ``cpu_limited`` annotations in the committed BENCH json must reflect
    what the benchmark could actually use, so everything here goes
    through the scheduler affinity mask (with a fallback for platforms
    that have no such call, e.g. macOS).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:  # pragma: no cover - exotic schedulers
            pass
    return os.cpu_count() or 1

#: Per-benchmark dataset scales (fractions of the real Table II sizes).
BENCH_SCALES: dict[str, float] = {
    "cora": 1.0,
    "cddb": 0.5,
    "ag": 0.5,
    "movies": 0.08,
    "dbpedia": 0.008,
}


def bench_dataset(name: str) -> GeneratedDataset:
    """The (memoized) benchmark-scale instance of a catalog dataset."""
    return load(name, scale=BENCH_SCALES[name])


def oracle_config(
    dataset: GeneratedDataset,
    alpha_fraction: float = 0.05,
    beta: float = 0.05,
    enable_block_cleaning: bool = True,
    enable_comparison_cleaning: bool = True,
) -> StreamERConfig:
    """Stream config with the paper's oracle ('perfect') classifier."""
    return StreamERConfig(
        alpha=StreamERConfig.alpha_for(len(dataset), alpha_fraction),
        beta=beta,
        enable_block_cleaning=enable_block_cleaning,
        enable_comparison_cleaning=enable_comparison_cleaning,
        clean_clean=dataset.clean_clean,
        classifier=OracleClassifier.from_pairs(dataset.ground_truth),
    )


def save_result(name: str, text: str) -> Path:
    """Print a result block and archive it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")
    return path
