"""Figure 9 — runtime breakdown: blocking (BT), comparison cleaning (CCT),
end-to-end (RT), as a function of the comparisons left after block cleaning.

Reported for cddb (representative small dataset) and dbpedia (largest), as
in the paper.  Expected shape: on the big dataset, baseline comparison
cleaning (meta-blocking over a materialized graph) grows superlinearly and
comes to dominate its blocking time, while our CC stays at-or-below our
blocking time — which is how the end-to-end runtime wins at scale despite
weaker pruning.  The paper's full effect (baseline CCT > 10·BT) needs the
full 3.3M-entity dbpedia; at reproduction scale we show the trend by
measuring the breakdown at two scales and reporting the growth factors.
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.batch import BatchERConfig, BatchERPipeline
from repro.classification import OracleClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.datasets import load, oracle_for
from repro.evaluation import format_table, scientific

BASELINE_CONFIGS = (
    (0.005, 0.1, "CBS", "WNP"),
    (0.005, 0.5, "CBS", "WNP"),
    (0.005, 0.5, "CBS", "RCNP"),
    (0.05, 0.5, "CBS", "WNP"),
)
OUR_CONFIGS = ((0.005, 0.1), (0.005, 0.05), (0.05, 0.05))

#: dbpedia scales for the growth-trend measurement.
DBPEDIA_SCALES = (0.008, 0.02)


def baseline_rows(name: str) -> list[dict[str, object]]:
    ds = bench_dataset(name)
    oracle = OracleClassifier.from_pairs(ds.ground_truth)
    rows = []
    for r, s, weighting, pruning in BASELINE_CONFIGS:
        config = BatchERConfig(
            r=r, s=s, weighting=weighting, pruning=pruning,
            clean_clean=ds.clean_clean, classifier=oracle,
        )
        result = BatchERPipeline(config).run(ds.entities)
        rows.append(
            {
                "dataset": name,
                "approach": config.label(),
                "comparisons_after_bc": scientific(result.comparisons_after_bc),
                "BT_s": round(result.blocking_seconds, 3),
                "CCT_s": round(result.cleaning_seconds, 3),
                "RT_s": round(result.resolution_seconds, 3),
                "CCT/BT": round(
                    result.cleaning_seconds / max(result.blocking_seconds, 1e-9), 2
                ),
            }
        )
    return rows


def our_breakdown(pipeline: StreamERPipeline, elapsed: float) -> tuple[float, float]:
    t = pipeline.timings.seconds
    bt = sum(t.get(s, 0.0) for s in ("dr", "bb+bp", "bg", "cg", "lm"))
    return bt, t.get("cc", 0.0)


def our_rows(name: str) -> list[dict[str, object]]:
    ds = bench_dataset(name)
    rows = []
    for fraction, beta in OUR_CONFIGS:
        pipeline = StreamERPipeline(
            oracle_config(ds, alpha_fraction=fraction, beta=beta), instrument=True
        )
        result = pipeline.process_many(ds.stream())
        bt, cct = our_breakdown(pipeline, result.elapsed_seconds)
        rows.append(
            {
                "dataset": name,
                "approach": f"I-WNP a={fraction}|D| b={beta}",
                "comparisons_after_bc": scientific(result.comparisons_generated),
                "BT_s": round(bt, 3),
                "CCT_s": round(cct, 3),
                "RT_s": round(result.elapsed_seconds, 3),
                "CCT/BT": round(cct / max(bt, 1e-9), 2),
            }
        )
    return rows


def scaling_rows() -> list[dict[str, object]]:
    """dbpedia at two scales: baseline CCT grows superlinearly, ours doesn't."""
    rows = []
    for scale in DBPEDIA_SCALES:
        ds = load("dbpedia", scale=scale)
        oracle = oracle_for(ds.ground_truth)
        config = BatchERConfig(
            r=0.005, s=0.5, weighting="CBS", pruning="WNP",
            clean_clean=True, classifier=oracle,
        )
        base = BatchERPipeline(config).run(ds.entities)
        rows.append(
            {
                "dataset": f"dbpedia@{scale}",
                "approach": "baseline " + config.label(),
                "comparisons_after_bc": scientific(base.comparisons_after_bc),
                "BT_s": round(base.blocking_seconds, 3),
                "CCT_s": round(base.cleaning_seconds, 3),
                "RT_s": round(base.resolution_seconds, 3),
                "CCT/BT": round(
                    base.cleaning_seconds / max(base.blocking_seconds, 1e-9), 2
                ),
            }
        )
        stream_cfg = StreamERConfig(
            alpha=StreamERConfig.alpha_for(len(ds), 0.005),
            beta=0.05,
            clean_clean=True,
            classifier=oracle,
        )
        pipeline = StreamERPipeline(stream_cfg, instrument=True)
        result = pipeline.process_many(ds.stream())
        bt, cct = our_breakdown(pipeline, result.elapsed_seconds)
        rows.append(
            {
                "dataset": f"dbpedia@{scale}",
                "approach": "I-WNP a=0.005|D| b=0.05",
                "comparisons_after_bc": scientific(result.comparisons_generated),
                "BT_s": round(bt, 3),
                "CCT_s": round(cct, 3),
                "RT_s": round(result.elapsed_seconds, 3),
                "CCT/BT": round(cct / max(bt, 1e-9), 2),
            }
        )
    return rows


def test_fig9_runtime_breakdown(benchmark):
    benchmark.pedantic(lambda: our_rows("cddb"), rounds=1, iterations=1)

    all_rows: list[dict[str, object]] = []
    all_rows.extend(baseline_rows("cddb"))
    all_rows.extend(our_rows("cddb"))
    scaling = scaling_rows()
    all_rows.extend(scaling)
    save_result("fig9_runtime_breakdown", format_table(all_rows))

    # Our comparison cleaning never exceeds our blocking time (paper: "CC is
    # actually faster or comparable to blocking when using our solutions").
    ours = [r for r in all_rows if "I-WNP" in str(r["approach"])]
    assert all(float(r["CCT/BT"]) <= 1.5 for r in ours), ours

    # Growth trend (the meta-blocking graph effect): scaling the data up
    # inflates the baseline's CCT relative to its blocking time, while our
    # comparison-cleaning cost per retained comparison stays flat.
    base_small, ours_small, base_big, ours_big = (
        scaling[0], scaling[1], scaling[2], scaling[3],
    )
    assert float(base_big["CCT/BT"]) > float(base_small["CCT/BT"]), scaling

    def cct_per_comparison(row) -> float:
        return float(row["CCT_s"]) / float(row["comparisons_after_bc"])

    ours_unit_growth = cct_per_comparison(ours_big) / max(
        cct_per_comparison(ours_small), 1e-12
    )
    assert ours_unit_growth < 1.5, ours_unit_growth  # linear in comparisons
