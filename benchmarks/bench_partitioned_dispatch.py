"""Block-partitioned dispatch vs chunked shm dispatch vs sequential.

The tentpole claim of partitioned dispatch is that the chunked path's
residual parent-side work — candidate-pair chunking, per-chunk row-table
encoding, and the merge of every *scored* pair — disappears when workers
own disjoint blocking-key ranges and run candidate generation plus
``f_cl`` rescoring locally.  The parent then ships one partition
descriptor per worker and merges only *matches* and dead letters, so the
serialization volume scales with the answer, not with the comparison
workload.  This benchmark stages the same incremental dynamic-data
scenario three ways on one generated dataset:

* ``sequential`` — interned sequential pipeline over all increments (the
  bar to beat, repeated and min-timed);
* ``mp_chunked`` — shared-memory backend, persistent pool, row-number
  chunk dispatch (``partitioned=False``: the PR's predecessor regime);
* ``mp_partitioned`` — identical wiring with block-partitioned dispatch
  negotiated (``partitioned=True``), LPT plan stats recorded from the
  final increment.

Measurements land in ``BENCH_partitioned.json`` at the repository root.
``mp_speedup`` is the sequential / partitioned wall-clock ratio; the > 1
target is asserted only when at least two effective CPUs are granted —
on single-CPU hosts the JSON records ``cpu_limited: true`` and the run
still validates exact match equality, the pair-accounting identity and
zero leaked ``/dev/shm`` segments.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from common import effective_cpus, save_result

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.backends import active_shm_segments
from repro.datasets import DatasetSpec, generate
from repro.evaluation import format_table
from repro.streaming import MultiprocessStreamRunner

N_ENTITIES = 20_000
N_INCREMENTS = 8
THRESHOLD = 0.7
SEQ_REPS = 3
WORKERS = 2
CHUNK_SIZE = 512
SPEEDUP_TARGET = 1.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_partitioned.json"


def _dataset(n_entities: int):
    return generate(
        DatasetSpec(
            name="bench-partitioned",
            kind="dirty",
            size=n_entities,
            matches=max(1, int(n_entities * 0.3)),
            avg_attributes=4.0,
            heterogeneity=0.5,
            vocab_rare=30_000,
            seed=7,
        )
    )


def _config(ds) -> StreamERConfig:
    return StreamERConfig.interned(
        alpha=StreamERConfig.alpha_for(len(ds), 0.05),
        beta=0.05,
        clean_clean=ds.clean_clean,
        classifier=ThresholdClassifier(THRESHOLD),
    )


def _increments(entities: list, n: int) -> list[list]:
    size = max(1, (len(entities) + n - 1) // n)
    return [entities[i : i + size] for i in range(0, len(entities), size)]


def _mp_run(ds, increments: list, partitioned: bool) -> dict:
    start = time.perf_counter()
    runner = MultiprocessStreamRunner(
        _config(ds),
        workers=WORKERS,
        chunk_size=CHUNK_SIZE,
        partitioned=partitioned,
    )
    with runner:
        for increment in increments:
            runner.process_increment(increment)
        pairs = runner.match_pairs()
        prefix = runner.backend.name
        pipeline = runner.pipeline
        stats = {
            "matches": len(pairs),
            "dispatch_mode": pipeline.dispatch_mode,
            "partitioned": pipeline.partitioned_dispatch,
            "pool_spawns": pipeline.pool_spawns,
            "pool_reuses": pipeline.pool_reuses,
            "pairs_dispatched": pipeline.pairs_dispatched,
            "pairs_prefiltered": pipeline.pairs_prefiltered,
        }
        plan = pipeline.last_partition_plan
        if plan is not None:
            stats["last_plan"] = {
                "used_bins": plan.used_bins,
                "groups": plan.group_count,
                "imbalance": round(plan.imbalance, 3),
                "largest_share": round(plan.largest_share, 3),
            }
    seconds = time.perf_counter() - start
    stats["seconds"] = round(seconds, 3)
    stats["_seconds_raw"] = seconds
    stats["_pairs"] = pairs
    stats["leaked"] = len(active_shm_segments(prefix))
    return stats


def run_benchmark(n_entities: int = N_ENTITIES) -> dict:
    ds = _dataset(n_entities)
    entities = list(ds.stream())
    increments = _increments(entities, N_INCREMENTS)

    seq_seconds = float("inf")
    seq_pairs = None
    for _ in range(SEQ_REPS):
        start = time.perf_counter()
        sequential = StreamERPipeline(_config(ds), instrument=False)
        for increment in increments:
            sequential.process_many(increment)
        seq_seconds = min(seq_seconds, time.perf_counter() - start)
        seq_pairs = sequential.cl.matches.pairs()

    chunked = _mp_run(ds, increments, partitioned=False)
    partitioned = _mp_run(ds, increments, partitioned=True)

    cpus = effective_cpus()
    part_seconds = partitioned["_seconds_raw"]
    mp_speedup = seq_seconds / part_seconds if part_seconds > 0 else 0.0
    speedup_vs_chunked = (
        chunked["_seconds_raw"] / part_seconds if part_seconds > 0 else 0.0
    )
    match_sets_identical = (
        partitioned.pop("_pairs") == seq_pairs and chunked.pop("_pairs") == seq_pairs
    )
    leaked = chunked.pop("leaked") + partitioned.pop("leaked")
    for stats in (chunked, partitioned):
        stats.pop("_seconds_raw")
        stats["entities_per_second"] = round(len(entities) / stats["seconds"], 1)
    return {
        "benchmark": "partitioned_dispatch",
        "entities": len(entities),
        "increments": len(increments),
        "workers": WORKERS,
        "chunk_size": CHUNK_SIZE,
        "effective_cpus": cpus,
        "cpu_limited": cpus < 2,
        "sequential": {
            "seconds": round(seq_seconds, 3),
            "entities_per_second": round(len(entities) / seq_seconds, 1),
            "matches": len(seq_pairs),
        },
        "mp_chunked": chunked,
        "mp_partitioned": partitioned,
        "mp_speedup": round(mp_speedup, 3),
        "speedup_vs_chunked": round(speedup_vs_chunked, 3),
        "speedup_target": SPEEDUP_TARGET,
        "speedup_target_met": mp_speedup > SPEEDUP_TARGET,
        "match_sets_identical": match_sets_identical,
        "leaked_shm_segments": leaked,
    }


def test_partitioned_dispatch(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    payload = run_benchmark()
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    rows = [
        {
            "executor": "sequential",
            "seconds": payload["sequential"]["seconds"],
            "e_per_s": payload["sequential"]["entities_per_second"],
            "matches": payload["sequential"]["matches"],
        },
        {
            "executor": f"mp x{WORKERS} shm chunked",
            "seconds": payload["mp_chunked"]["seconds"],
            "e_per_s": payload["mp_chunked"]["entities_per_second"],
            "matches": payload["mp_chunked"]["matches"],
        },
        {
            "executor": f"mp x{WORKERS} shm partitioned",
            "seconds": payload["mp_partitioned"]["seconds"],
            "e_per_s": payload["mp_partitioned"]["entities_per_second"],
            "matches": payload["mp_partitioned"]["matches"],
        },
    ]
    save_result(
        "partitioned_dispatch",
        format_table(rows)
        + f"\npartitioned speedup vs seq: {payload['mp_speedup']}x"
        + f" | vs chunked: {payload['speedup_vs_chunked']}x"
        + f" on {payload['effective_cpus']} cpu(s)"
        + f"\n[saved to {RESULT_PATH}]",
    )

    # Partitioning must never change the answer, on any hardware, and
    # must never leak a segment.
    assert payload["match_sets_identical"]
    assert payload["leaked_shm_segments"] == 0
    assert payload["mp_partitioned"]["partitioned"] is True
    assert payload["mp_chunked"]["partitioned"] is False
    assert payload["mp_partitioned"]["pool_spawns"] == 1
    assert payload["mp_partitioned"]["last_plan"]["used_bins"] >= 1
    # The throughput target only makes sense with real parallelism.
    if not payload["cpu_limited"]:
        assert payload["mp_speedup"] > SPEEDUP_TARGET, payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entities", type=int, default=N_ENTITIES)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="correctness only: fail on match-set divergence, leaked "
        "shared-memory segments, or failed partitioned negotiation; the "
        "speedup target is asserted only on >= 2 effective CPUs "
        "(cpu_limited gate) and the committed JSON is not rewritten",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(args.entities)
    if args.smoke:
        brief = {
            key: payload[key]
            for key in (
                "entities",
                "effective_cpus",
                "cpu_limited",
                "mp_speedup",
                "speedup_vs_chunked",
                "match_sets_identical",
                "leaked_shm_segments",
            )
        }
        print(json.dumps(brief, indent=2))
        if not payload["match_sets_identical"]:
            print("FAIL: partitioned dispatch diverged from the sequential match set")
            return 1
        if payload["leaked_shm_segments"]:
            print(
                f"FAIL: {payload['leaked_shm_segments']} shared-memory "
                "segment(s) leaked after the multiprocess runs"
            )
            return 1
        if not payload["mp_partitioned"]["partitioned"]:
            print("FAIL: partitioned dispatch was not negotiated on the shm backend")
            return 1
        if payload["cpu_limited"]:
            print(
                "OK: match sets identical, no leaks "
                "(1 effective CPU: speedup informational)"
            )
            return 0
        if payload["mp_speedup"] <= SPEEDUP_TARGET:
            print(
                f"FAIL: mp_speedup {payload['mp_speedup']} <= "
                f"{SPEEDUP_TARGET} on {payload['effective_cpus']} CPUs"
            )
            return 1
        print("OK: match sets identical, no leaks, speedup target met")
        return 0
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
