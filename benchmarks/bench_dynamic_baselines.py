"""Extension — our framework vs dynamic-ER baselines for structured data.

§II-B argues that the incremental-ER techniques for relational data
(dynamic sorted-neighborhood indexing, similarity-aware inverted indexing;
Ramadan et al.) "do not trivially extend to ER on heterogeneous data".
This benchmark makes that argument measurable: all three systems stream
the same datasets — one relational-ish (cddb-like, stable schema) and one
heterogeneous (movies-like, volatile attribute names) — and report
runtime, comparisons, and pair completeness.

Expected shape: DySNI is cheap everywhere but its sort-key collapses on
the heterogeneous dataset (PC drops); DySimII keeps PC high but scans
full posting lists (no block cleaning) and pays for it in comparisons and
runtime; our framework holds both PC and workload at scale.
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.baselines import DySimII, DySimIIConfig, DySNI, DySNIConfig
from repro.classification import OracleClassifier
from repro.core import StreamERPipeline
from repro.evaluation import format_table, pair_completeness


def run_all(name: str) -> list[dict[str, object]]:
    ds = bench_dataset(name)
    oracle = OracleClassifier.from_pairs(ds.ground_truth)
    rows = []

    ours = StreamERPipeline(oracle_config(ds), instrument=False)
    result = ours.process_many(ds.stream())
    rows.append(
        {
            "dataset": name,
            "system": "ours (I-WNP)",
            "rt_s": round(result.elapsed_seconds, 3),
            "comparisons": result.comparisons_after_cleaning,
            "PC": round(pair_completeness(result.match_pairs, ds.ground_truth), 3),
        }
    )

    dysni = DySNI(
        DySNIConfig(
            window=8,
            key_attributes=("title", "name", "description"),
            classifier=oracle,
        )
    )
    dysni.process_many(ds.stream())
    rows.append(
        {
            "dataset": name,
            "system": "DySNI (w=8)",
            "rt_s": round(dysni.total_seconds, 3),
            "comparisons": dysni.comparisons,
            "PC": round(pair_completeness(dysni.match_pairs, ds.ground_truth), 3),
        }
    )

    dysim = DySimII(DySimIIConfig(min_overlap_ratio=0.2, classifier=oracle))
    dysim.process_many(ds.stream())
    rows.append(
        {
            "dataset": name,
            "system": "DySimII (o=0.2)",
            "rt_s": round(dysim.total_seconds, 3),
            "comparisons": dysim.comparisons,
            "PC": round(pair_completeness(dysim.match_pairs, ds.ground_truth), 3),
        }
    )
    return rows


def test_dynamic_baselines(benchmark):
    rows = benchmark.pedantic(lambda: run_all("cddb"), rounds=1, iterations=1)
    rows = list(rows)
    rows.extend(run_all("movies"))
    save_result("dynamic_baselines", format_table(rows))

    def of(dataset, system):
        return next(r for r in rows if r["dataset"] == dataset and system in str(r["system"]))

    # DySNI's schema-dependent key loses completeness on heterogeneous data
    # relative to our schema-agnostic blocking.
    assert of("movies", "DySNI")["PC"] < of("movies", "ours")["PC"]
    # DySimII stays complete but must execute (far) more comparisons than
    # the cleaned pipeline on at least the heterogeneous dataset.
    assert of("movies", "DySimII")["comparisons"] > of("movies", "ours")["comparisons"]
