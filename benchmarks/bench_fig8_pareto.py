"""Figure 8 — overall runtime vs quality (Pareto frontier).

For every dataset, run end-to-end ER with (a) the baseline batch workflow
across a grid of block-cleaning and comparison-cleaning configurations and
(b) our I-WNP pipeline across its α × β grid.  Plot runtime against 1−PC
(smaller is better on both axes) and trace the baseline Pareto frontier.

Expected shape (paper): on every dataset, at least one configuration of
our end-to-end solution lies on or ahead of the baseline Pareto frontier.
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.batch import BatchERConfig, BatchERPipeline
from repro.classification import OracleClassifier
from repro.core import StreamERPipeline
from repro.datasets import DATASET_NAMES
from repro.evaluation import format_table, pair_completeness

#: Reduced grids, keeping the spread of the paper's grids while staying
#: within a single-box time budget.
BASELINE_BC = ((0.005, 0.1), (0.005, 0.5), (0.05, 0.5), (0.05, 0.8))
BASELINE_CC = (("CBS", "WNP"), ("CBS", "RWNP"), ("CBS", "RCNP"), ("CBS", "WEP"))
OUR_GRID = ((0.05, 0.1), (0.05, 0.05), (0.005, 0.1), (0.005, 0.01))


def baseline_points(name: str) -> list[dict[str, object]]:
    ds = bench_dataset(name)
    oracle = OracleClassifier.from_pairs(ds.ground_truth)
    points = []
    bc_grid = BASELINE_BC if name != "dbpedia" else ((0.005, 0.1), (0.005, 0.5))
    for r, s in bc_grid:
        for weighting, pruning in BASELINE_CC:
            config = BatchERConfig(
                r=r, s=s, weighting=weighting, pruning=pruning,
                clean_clean=ds.clean_clean, classifier=oracle,
            )
            result = BatchERPipeline(config).run(ds.entities)
            pc = pair_completeness(result.match_pairs, ds.ground_truth)
            points.append(
                {
                    "approach": config.label(),
                    "kind": "baseline",
                    "rt_s": result.resolution_seconds,
                    "one_minus_pc": 1.0 - pc,
                }
            )
    return points


def our_points(name: str) -> list[dict[str, object]]:
    ds = bench_dataset(name)
    points = []
    for fraction, beta in OUR_GRID:
        if name == "dbpedia" and fraction != 0.005:
            continue
        pipeline = StreamERPipeline(
            oracle_config(ds, alpha_fraction=fraction, beta=beta), instrument=False
        )
        result = pipeline.process_many(ds.stream())
        pc = pair_completeness(result.match_pairs, ds.ground_truth)
        points.append(
            {
                "approach": f"I-WNP a={fraction}|D| b={beta}",
                "kind": "ours",
                "rt_s": result.elapsed_seconds,
                "one_minus_pc": 1.0 - pc,
            }
        )
    return points


def pareto_frontier(points: list[dict[str, object]]) -> list[dict[str, object]]:
    """Non-dominated points (minimizing rt_s and one_minus_pc)."""
    frontier = []
    for p in points:
        dominated = any(
            q["rt_s"] <= p["rt_s"]
            and q["one_minus_pc"] <= p["one_minus_pc"]
            and (q["rt_s"] < p["rt_s"] or q["one_minus_pc"] < p["one_minus_pc"])
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return frontier


def on_or_ahead_of_frontier(
    ours: list[dict[str, object]], frontier: list[dict[str, object]]
) -> bool:
    """True if one of our points is not dominated by any frontier point."""
    for p in ours:
        dominated = any(
            q["rt_s"] <= p["rt_s"]
            and q["one_minus_pc"] <= p["one_minus_pc"]
            and (q["rt_s"] < p["rt_s"] or q["one_minus_pc"] < p["one_minus_pc"])
            for q in frontier
        )
        if not dominated:
            return True
    return False


def test_fig8_pareto(benchmark):
    benchmark.pedantic(lambda: our_points("ag"), rounds=1, iterations=1)

    rows: list[dict[str, object]] = []
    verdicts: dict[str, bool] = {}
    for name in DATASET_NAMES:
        base = baseline_points(name)
        ours = our_points(name)
        frontier = pareto_frontier(base)
        verdicts[name] = on_or_ahead_of_frontier(ours, frontier)
        frontier_set = {id(p) for p in frontier}
        for p in base + ours:
            rows.append(
                {
                    "dataset": name,
                    "approach": p["approach"],
                    "kind": p["kind"],
                    "rt_s": round(float(p["rt_s"]), 3),
                    "1-PC": round(float(p["one_minus_pc"]), 4),
                    "pareto": "*" if id(p) in frontier_set else "",
                }
            )
    rows.append({"dataset": "---", "approach": f"ours on/ahead of frontier: {verdicts}"})
    save_result("fig8_pareto", format_table(
        rows, columns=["dataset", "approach", "kind", "rt_s", "1-PC", "pareto"]
    ))

    # The paper's headline: on ALL datasets our solution reaches the
    # baseline Pareto frontier; require it on the (large) majority here.
    assert sum(verdicts.values()) >= 4, verdicts
