"""Interned comparison kernel vs the string-set baseline, SEQ and MP.

The tentpole claim of the interning layer is that the comparison stage —
the pipeline's dominant cost (Figure 6) — gets ≥ 2× faster *without
changing a single match*: token ids, batched scoring, the length prefilter
and threshold-aware verification are pure execution-strategy changes, and
the match set is provably identical (see ``docs/performance.md`` for the
derivation).  This benchmark measures both halves of that claim on the
same ≥ 20 000-entity generated dataset as ``bench_sharded_backend.py``:

* sequential ``f_co``-stage throughput, string comparator vs interned
  kernel (prefilter on and off), from the instrumented pipeline's
  per-stage timings;
* multiprocess wall clock with compact id-array dispatch, against the
  sequential run — on a single-CPU host this cannot exceed 1.0, but it
  must beat the 0.194× the full-profile pickling path recorded in
  ``BENCH_sharded.json``, because the win being measured is IPC volume,
  not parallelism;
* exact match-set equality across every executor and comparator.

Measurements land in ``BENCH_compare_kernel.json`` at the repository root.
Run directly for the CI smoke mode, which exits nonzero on any match-set
divergence and ignores timing entirely (timing thresholds on shared CI
hardware only produce noise)::

    PYTHONPATH=src python benchmarks/bench_compare_kernel.py --entities 2000 --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from common import effective_cpus, save_result

from repro.classification import ThresholdClassifier
from repro.core import StreamERConfig, StreamERPipeline
from repro.core.backends import SharedMemoryBackend, active_shm_segments
from repro.datasets import DatasetSpec, generate
from repro.evaluation import format_table
from repro.parallel import MultiprocessERPipeline

N_ENTITIES = 20_000
THRESHOLD = 0.7
#: Sequential runs repeat this many times and keep the fastest — on shared
#: hosts the run-to-run spread of a 20k-entity pipeline is ±15%, and the
#: minimum is the standard low-noise estimator for CPU-bound loops.
SEQ_REPS = 5
WORKERS = 2
CHUNK_SIZE = 512
CO_SPEEDUP_TARGET = 2.0
#: The mp-vs-seq ratio of the full-profile pickling dispatch on this host
#: class (single CPU), from BENCH_sharded.json — the bar compact dispatch
#: must clear.
MP_BASELINE = 0.194
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_compare_kernel.json"


def _dataset(n_entities: int):
    return generate(
        DatasetSpec(
            name="bench-compare-kernel",
            kind="dirty",
            size=n_entities,
            matches=max(1, int(n_entities * 0.3)),
            avg_attributes=4.0,
            # Moderate size skew is the regime the length prefilter targets:
            # uniform profiles never trip a |a|/|b| < t bound, wildly skewed
            # ones shrink the comparison lists themselves.
            heterogeneity=0.5,
            vocab_rare=30_000,
            seed=7,
        )
    )


def _base_kwargs(ds) -> dict:
    return {
        "alpha": StreamERConfig.alpha_for(len(ds), 0.05),
        "beta": 0.05,
        "clean_clean": ds.clean_clean,
        "classifier": ThresholdClassifier(THRESHOLD),
    }


def _run_sequential(config: StreamERConfig, entities, reps: int = SEQ_REPS) -> dict:
    seconds = co_seconds = float("inf")
    pipeline = None
    for _ in range(reps):
        start = time.perf_counter()
        candidate = StreamERPipeline(config, instrument=True)
        candidate.process_many(entities)
        elapsed = time.perf_counter() - start
        seconds = min(seconds, elapsed)
        co_seconds = min(co_seconds, candidate.timings.seconds.get("co", 0.0))
        pipeline = candidate
    compared = pipeline.co.compared
    return {
        "seconds": round(seconds, 3),
        "co_seconds": round(co_seconds, 3),
        "co_pairs_per_second": round(compared / co_seconds, 1) if co_seconds else 0.0,
        "comparisons_executed": compared,
        "matches": len(pipeline.cl.matches.pairs()),
        "pairs": pipeline.cl.matches.pairs(),
    }


def run_benchmark(n_entities: int = N_ENTITIES, backend: str = "memory") -> dict:
    ds = _dataset(n_entities)
    entities = list(ds.stream())

    seq_string = _run_sequential(StreamERConfig(**_base_kwargs(ds)), entities)
    seq_interned = _run_sequential(StreamERConfig.interned(**_base_kwargs(ds)), entities)
    seq_noprefilter = _run_sequential(
        StreamERConfig.interned(prefilter=False, **_base_kwargs(ds)), entities
    )

    shm_backend = SharedMemoryBackend() if backend == "shm" else None
    start = time.perf_counter()
    mp_pipeline = MultiprocessERPipeline(
        StreamERConfig.interned(**_base_kwargs(ds)),
        workers=WORKERS,
        chunk_size=CHUNK_SIZE,
        backend=shm_backend,
    )
    mp_result = mp_pipeline.run(entities)
    mp_seconds = time.perf_counter() - start
    mp_pairs = mp_pipeline.backend.matches.pairs()
    mp_pipeline.close()
    leaked_segments = 0
    if shm_backend is not None:
        prefix = shm_backend.name
        shm_backend.unlink()
        leaked_segments = len(active_shm_segments(prefix))

    co_speedup = (
        seq_string["co_seconds"] / seq_interned["co_seconds"]
        if seq_interned["co_seconds"]
        else 0.0
    )
    mp_speedup = seq_interned["seconds"] / mp_seconds if mp_seconds else 0.0

    payload = {
        "benchmark": "compare_kernel",
        "entities": len(entities),
        "threshold": THRESHOLD,
        "workers": WORKERS,
        "chunk_size": CHUNK_SIZE,
        "mp_backend": backend,
        "leaked_shm_segments": leaked_segments,
        "effective_cpus": effective_cpus(),
        "sequential_string": _public(seq_string),
        "sequential_interned": _public(seq_interned),
        "sequential_interned_noprefilter": _public(seq_noprefilter),
        "multiprocess_interned": {
            "seconds": round(mp_seconds, 3),
            "entities_per_second": round(len(entities) / mp_seconds, 1),
            "matches": len(mp_pairs),
            "pairs_prefiltered": mp_pipeline.pairs_prefiltered,
            "pairs_dispatched": mp_pipeline.pairs_dispatched,
            "dispatch_mode": mp_pipeline.dispatch_mode,
        },
        "co_speedup": round(co_speedup, 3),
        "co_speedup_target": CO_SPEEDUP_TARGET,
        "co_speedup_target_met": co_speedup >= CO_SPEEDUP_TARGET,
        "mp_speedup": round(mp_speedup, 3),
        "mp_speedup_baseline": MP_BASELINE,
        "mp_speedup_better_than_baseline": mp_speedup > MP_BASELINE,
        "comparisons": {
            "string_vs_interned": {
                "match_sets_identical": seq_string["pairs"] == seq_interned["pairs"]
                and seq_string["pairs"] == seq_noprefilter["pairs"],
            },
            "multiprocess_vs_sequential": {
                "match_sets_identical": mp_pairs == seq_string["pairs"],
            },
        },
        "multiprocess_result_matches": len(mp_result.match_pairs),
    }
    return payload


def _public(run: dict) -> dict:
    """The JSON view of one sequential run (the raw pair set stays local)."""
    return {k: v for k, v in run.items() if k != "pairs"}


def _report(payload: dict) -> None:
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    rows = [
        {
            "run": name,
            "seconds": payload[key]["seconds"],
            "co_seconds": payload[key].get("co_seconds", "-"),
            "matches": payload[key]["matches"],
        }
        for name, key in (
            ("seq string", "sequential_string"),
            ("seq interned", "sequential_interned"),
            ("seq interned (no prefilter)", "sequential_interned_noprefilter"),
            (f"mp x{payload['workers']} interned", "multiprocess_interned"),
        )
    ]
    save_result(
        "compare_kernel",
        format_table(rows)
        + f"\nco speedup: {payload['co_speedup']}x"
        + f" | mp speedup: {payload['mp_speedup']}x"
        + f" on {payload['effective_cpus']} cpu(s)"
        + f"\n[saved to {RESULT_PATH}]",
    )


def test_compare_kernel(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    payload = run_benchmark()
    _report(payload)

    # Interning must never change the answer, on any hardware.
    assert payload["comparisons"]["string_vs_interned"]["match_sets_identical"]
    assert payload["comparisons"]["multiprocess_vs_sequential"]["match_sets_identical"]
    assert payload["entities"] >= 20_000
    assert payload["co_speedup_target_met"], payload
    assert payload["mp_speedup_better_than_baseline"], payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entities", type=int, default=N_ENTITIES)
    parser.add_argument(
        "--backend",
        choices=("memory", "shm"),
        default="memory",
        help="state backend for the multiprocess run (shm = shared-memory "
        "token columns with row-number dispatch)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="correctness only: fail on match-set divergence (and, with "
        "--backend shm, on leaked shared-memory segments); ignore timing",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(args.entities, backend=args.backend)
    if args.smoke:
        diverged = not (
            payload["comparisons"]["string_vs_interned"]["match_sets_identical"]
            and payload["comparisons"]["multiprocess_vs_sequential"][
                "match_sets_identical"
            ]
        )
        print(json.dumps(payload["comparisons"], indent=2))
        print(f"co_speedup={payload['co_speedup']} (informational in smoke mode)")
        if diverged:
            print("FAIL: interned kernel diverged from the string-set match set")
            return 1
        if payload["leaked_shm_segments"]:
            print(
                f"FAIL: {payload['leaked_shm_segments']} shared-memory "
                "segment(s) leaked after the multiprocess run"
            )
            return 1
        print("OK: match sets identical across comparators and executors")
        return 0
    _report(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
