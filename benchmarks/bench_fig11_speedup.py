"""Figure 11 — speedup of PP and MPP on dbpedia, 8 to 25 processes.

Per-stage service times are measured from a *real* instrumented sequential
run over the dbpedia-like dataset, then fed into the discrete-event
simulator that models the paper's 16-core machine, per-message overhead,
bounded buffers, and (for MPP) micro-batch aggregation — see DESIGN.md §3
for why this substitution preserves the phenomena.

Expected shape (paper): PP ≈ 1.1 at 8 processes (little gain), MPP ≈ 1.7;
both rise with the process count, peak around P = 19 (PP ≈ 8, MPP ≈ 9.5,
MPP consistently above PP), and stagnate once workers exceed the 16 cores.
Additionally reports absolute runtimes in the spirit of §V-C (SEQ vs PP vs
MPP with 25 processes) and verifies the parallel variants lose no quality
(same matches as SEQ, by construction of the thread framework).
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.evaluation import format_table, line_chart
from repro.parallel import (
    ServiceModel,
    SimulatorConfig,
    calibrate_service_model,
    simulate_speedup,
)

PROCESS_COUNTS = (8, 11, 15, 19, 22, 25)
SIM_ITEMS = 6000


def calibrate() -> tuple[ServiceModel, float]:
    """Measure per-stage service times on the dbpedia-like dataset."""
    ds = bench_dataset("dbpedia")
    service = calibrate_service_model(
        ds.entities, oracle_config(ds, alpha_fraction=0.005)
    )
    return service, service.mean_total() * len(ds.entities)


def speedup_curves(service: ServiceModel) -> list[dict[str, object]]:
    comm = 0.05 * service.mean_total()
    rows = []
    for processes in PROCESS_COUNTS:
        pp, _ = simulate_speedup(
            service, processes, n_items=SIM_ITEMS,
            config=SimulatorConfig(comm_overhead=comm, buffer_capacity=16,
                                   micro_batch_size=1),
        )
        mpp, _ = simulate_speedup(
            service, processes, n_items=SIM_ITEMS,
            config=SimulatorConfig(comm_overhead=comm, buffer_capacity=150,
                                   micro_batch_size=100),
        )
        rows.append(
            {"processes": processes, "PP": round(pp, 2), "MPP": round(mpp, 2)}
        )
    return rows


def test_fig11_speedup(benchmark):
    service, seq_seconds = calibrate()
    rows = benchmark.pedantic(lambda: speedup_curves(service), rounds=1, iterations=1)

    by_p = {r["processes"]: r for r in rows}
    peak_pp = max(float(r["PP"]) for r in rows)
    peak_mpp = max(float(r["MPP"]) for r in rows)
    summary = [
        f"simulated sequential per-entity cost: {service.mean_total() * 1e3:.3f} ms",
        f"measured SEQ total: {seq_seconds:.1f} s",
        f"projected PP(25): {seq_seconds / float(by_p[25]['PP']):.1f} s, "
        f"MPP(25): {seq_seconds / float(by_p[25]['MPP']):.1f} s",
        f"peak speedup: PP {peak_pp}, MPP {peak_mpp} (paper: 8 / 9.5)",
        "",
        format_table(rows),
        "",
        line_chart(
            {
                "PP": [(r["processes"], float(r["PP"])) for r in rows],
                "MPP": [(r["processes"], float(r["MPP"])) for r in rows],
            },
            x_label="processes",
            y_label="speedup",
        ),
    ]
    save_result("fig11_speedup", "\n".join(summary))

    # Shape assertions mirroring the paper's findings.  At P=8 the paper
    # measures only 1.12 (PP) / 1.67 (MPP); our simulator's overhead model
    # is milder, but P=8 must remain the worst point of the curve and far
    # below the peak.
    assert float(by_p[8]["PP"]) == min(float(r["PP"]) for r in rows)
    assert float(by_p[8]["PP"]) < 0.6 * peak_pp
    assert float(by_p[8]["MPP"]) >= float(by_p[8]["PP"])  # micro-batching helps
    assert float(by_p[19]["PP"]) > 1.5 * float(by_p[8]["PP"])  # strong rise
    for p in PROCESS_COUNTS:
        assert float(by_p[p]["MPP"]) >= float(by_p[p]["PP"]) * 0.9
    # Saturation past the 16 cores: 25 processes barely beat 19.
    assert float(by_p[25]["PP"]) <= float(by_p[19]["PP"]) * 1.3
    assert 4.0 <= peak_pp <= 14.0
    assert 6.0 <= peak_mpp <= 16.0
