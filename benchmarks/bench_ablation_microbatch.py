"""Ablation — micro-batch size and buffer capacity of the parallel framework.

§V-C fixes the MPP aggregation at (100 profiles, 10 ms) and the paper does
not explore the knob; this ablation sweeps the micro-batch size and the
inter-stage buffer capacity on the calibrated simulator to show where the
chosen operating point sits:

* batch size: overhead amortization rises quickly and flattens — batches
  beyond ~100 buy little (and add latency);
* buffer capacity: tiny buffers choke the pipeline under service-time
  variability; moderate capacity recovers nearly all throughput.
"""

from __future__ import annotations

from common import bench_dataset, oracle_config, save_result

from repro.evaluation import format_table
from repro.parallel import (
    ServiceModel,
    SimulatorConfig,
    calibrate_service_model,
    simulate_speedup,
)

BATCH_SIZES = (1, 10, 50, 100, 400)
CAPACITIES = (1, 2, 8, 16, 64)
PROCESSES = 19
N_ITEMS = 4000


def calibrate() -> ServiceModel:
    ds = bench_dataset("dbpedia")
    return calibrate_service_model(
        ds.entities, oracle_config(ds, alpha_fraction=0.005)
    )


def test_ablation_microbatch(benchmark):
    service = calibrate()
    comm = 0.05 * service.mean_total()

    def sweep():
        rows = []
        for batch in BATCH_SIZES:
            cfg = SimulatorConfig(
                comm_overhead=comm,
                buffer_capacity=max(16, batch * 2),
                micro_batch_size=batch,
            )
            sp, _ = simulate_speedup(service, PROCESSES, n_items=N_ITEMS, config=cfg)
            rows.append({"knob": "batch", "value": batch, "speedup": round(sp, 2)})
        for capacity in CAPACITIES:
            cfg = SimulatorConfig(
                comm_overhead=comm, buffer_capacity=capacity, micro_batch_size=1
            )
            sp, _ = simulate_speedup(service, PROCESSES, n_items=N_ITEMS, config=cfg)
            rows.append(
                {"knob": "capacity", "value": capacity, "speedup": round(sp, 2)}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("ablation_microbatch", format_table(rows))

    batch_curve = {r["value"]: float(r["speedup"]) for r in rows if r["knob"] == "batch"}
    # Micro-batching helps over PP and has flattened by the paper's 100.
    assert batch_curve[100] > batch_curve[1]
    assert batch_curve[400] < batch_curve[100] * 1.25

    capacity_curve = {
        r["value"]: float(r["speedup"]) for r in rows if r["knob"] == "capacity"
    }
    # Larger buffers absorb variability: monotone-ish improvement.
    assert capacity_curve[16] > capacity_curve[1]
